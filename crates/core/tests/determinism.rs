//! Determinism regression: training is a pure function of `cfg.seed`,
//! regardless of how many threads the tensor runtime uses. Two `Trainer::fit`
//! runs with the same seed must produce bit-identical `EpochStats`,
//! validation RMSE curves, and predictions — serially *and* on the worker
//! pool, and the serial and parallel runs must match **each other** too.
//! This is the end-to-end guarantee the kernel-level parity tests
//! (om-tensor `tests/parity.rs`) build up to.

use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_data::split::CrossDomainScenario;
use om_data::types::{ItemId, UserId};
use om_tensor::runtime;
use omnimatch_core::{OmniMatchConfig, Trainer};

fn scenario() -> CrossDomainScenario {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    world.scenario("Books", "Movies", SplitConfig::default())
}

/// Everything a training run observably produces, bit-exact.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    epoch_stats: Vec<[u32; 4]>,
    valid_rmse: Vec<u32>,
    best_epoch: usize,
    predictions: Vec<u32>,
}

fn fingerprint(sc: &CrossDomainScenario, seed: u64) -> Fingerprint {
    let trained = Trainer::new(OmniMatchConfig::fast().with_seed(seed)).fit(sc);
    let report = trained.report();
    let pairs: Vec<(UserId, ItemId)> = sc
        .test_pairs()
        .iter()
        .map(|it| (it.user, it.item))
        .collect();
    Fingerprint {
        epoch_stats: report
            .epochs
            .iter()
            .map(|e| {
                [
                    e.total.to_bits(),
                    e.rating.to_bits(),
                    e.scl.to_bits(),
                    e.domain.to_bits(),
                ]
            })
            .collect(),
        valid_rmse: report.valid_rmse.iter().map(|r| r.to_bits()).collect(),
        best_epoch: report.best_epoch,
        predictions: trained
            .predict(&pairs)
            .iter()
            .map(|p| p.to_bits())
            .collect(),
    }
}

#[test]
fn training_is_bitwise_deterministic_at_any_thread_count() {
    let sc = scenario();

    let prev = runtime::set_threads(1);
    let serial_a = fingerprint(&sc, 42);
    let serial_b = fingerprint(&sc, 42);
    runtime::set_threads(0);
    let parallel_a = fingerprint(&sc, 42);
    let parallel_b = fingerprint(&sc, 42);
    runtime::set_threads(prev);

    assert!(!serial_a.epoch_stats.is_empty());
    assert!(!serial_a.valid_rmse.is_empty(), "validation RMSE must be tracked");
    // Same seed, same thread count → identical runs.
    assert_eq!(serial_a, serial_b, "two serial runs with one seed diverged");
    assert_eq!(parallel_a, parallel_b, "two pooled runs with one seed diverged");
    // And the thread count itself must not matter.
    assert_eq!(
        serial_a, parallel_a,
        "serial and parallel training with one seed diverged"
    );
}

#[test]
fn different_seeds_actually_differ() {
    // Guards the fingerprint against being trivially constant.
    let sc = scenario();
    let a = fingerprint(&sc, 1);
    let b = fingerprint(&sc, 2);
    assert_ne!(a.predictions, b.predictions, "seed must influence training");
}

#[test]
fn observability_does_not_perturb_training() {
    // The om-obs instrumentation contract: telemetry only reads clocks and
    // bumps atomics, so enabling it must leave every training result
    // bit-identical. Run artifacts are routed to a scratch dir so the test
    // never writes into results/obs/.
    let sc = scenario();
    let tmp = std::env::temp_dir().join(format!("om-obs-determinism-{}", std::process::id()));

    om_obs::set_enabled(false);
    let off = fingerprint(&sc, 7);

    om_obs::set_out_root(&tmp);
    om_obs::set_enabled(true);
    let on = fingerprint(&sc, 7);
    om_obs::set_enabled(false);

    let _ = std::fs::remove_dir_all(&tmp);
    assert_eq!(
        off, on,
        "enabling OM_OBS telemetry changed training results"
    );
}
