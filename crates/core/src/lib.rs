//! # omnimatch-core
//!
//! The paper's primary contribution: the OmniMatch review-based
//! cross-domain cold-start recommender (EDBT 2025).
//!
//! Pipeline (Fig. 2 of the paper):
//!
//! 1. [`auxiliary`] — **Auxiliary Reviews Generation Module** (§4.1,
//!    Algorithm 1): builds target-domain review documents for cold-start
//!    users from like-minded overlapping users.
//! 2. [`corpus`] — assembles and encodes the three document families of
//!    §4.2 (user-source, user-target, item) over a shared vocabulary.
//! 3. [`model`] — **Features Extraction Module** (§4.2, shared-private
//!    TextCNN extractors), **Contrastive Representation Learning Module**
//!    (§4.3, projected user–item pairs + supervised contrastive loss),
//!    **Domain Adversarial Training Module** (§4.4, gradient-reversal
//!    domain classifiers) and the rating classifier (Eq. 18).
//! 4. [`trainer`] — the joint objective `L = L_rating + α·L_SCL +
//!    β·L_domain` (Eq. 21), Adadelta training (§5.4), cold-start
//!    evaluation (Eqs. 22–23).
//!
//! ```no_run
//! use om_data::{SynthConfig, SynthWorld, SplitConfig};
//! use omnimatch_core::{OmniMatchConfig, Trainer};
//!
//! let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
//! let scenario = world.scenario("Books", "Movies", SplitConfig::default());
//! let trained = Trainer::new(OmniMatchConfig::default()).fit(&scenario);
//! let eval = trained.evaluate(&scenario.test_pairs());
//! println!("cold-start RMSE {:.3} MAE {:.3}", eval.rmse, eval.mae);
//! ```

pub mod auxiliary;
pub mod ckpt;
pub mod config;
pub mod corpus;
pub mod model;
pub mod shapecheck;
pub mod trainer;

pub use auxiliary::{AuxiliaryDocument, AuxiliaryReviewGenerator, AuxiliaryStep};
pub use ckpt::CkptConfig;
pub use config::{AuxMode, ExtractorKind, OmniMatchConfig};
pub use corpus::CorpusViews;
pub use model::OmniMatchModel;
pub use shapecheck::shape_check;
pub use trainer::{EpochStats, TrainReport, TrainedOmniMatch, Trainer};
