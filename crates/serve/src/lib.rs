//! # om-serve
//!
//! Batched inference serving for trained OmniMatch checkpoints — the
//! first end-to-end *read* path through the stack, and the deployment
//! shape the paper's cold-start scenario implies: a new user arrives in
//! the target domain, and the system must rank the full target catalogue
//! for them, now.
//!
//! Pipeline:
//!
//! 1. [`loader`] — rebuild the model from an OMCK v2 checkpoint (either a
//!    trainer epoch checkpoint or [`export_checkpoint`]'s minimal file);
//! 2. [`arena`] — offline precompute: every target-domain item (and every
//!    warm user) is encoded **once** into a contiguous `[n, dim]` f32
//!    arena, so a request never re-runs the item tower;
//! 3. [`batcher`] — microbatching: requests accumulate until
//!    `OM_SERVE_BATCH` are pending or the oldest has waited
//!    `OM_SERVE_WAIT_US`, then score as one batch;
//! 4. [`engine`] — one `pair_rows` cross-join + one rating-classifier
//!    GEMM per flush, then sharded top-K per request via
//!    `om_metrics::topk` (the same selection the offline tables use).
//!
//! Million-scale serving layers three more pieces on top, none of which
//! may change a single result bit:
//!
//! 5. [`blob`]/[`mmap`] — arenas persist as length/CRC-framed `OMAB`
//!    blobs, loaded all-or-nothing and memory-mapped so cold start is
//!    O(pages touched), not O(catalogue);
//! 6. [`shard`] — [`ShardedEngine`] scores the catalogue in fixed-width
//!    item shards with per-shard top-K merged by `om_metrics::merge_top_k`
//!    (bitwise identical to the single-arena path — see `shard`'s docs
//!    for the argument and `tests/sharded_diff.rs` for the proof);
//! 7. [`frontend`] — a bounded-queue threaded front-end with admission
//!    control: full queue means a typed rejection, shutdown drains every
//!    accepted request.
//!
//! Live traffic closes the cold-start loop:
//!
//! 8. [`update`] — streamed target-domain interactions
//!    ([`FrontendHandle::submit_interaction`]) buffer per user; at
//!    `OM_SERVE_WARM_AFTER` interactions the user's row is re-encoded
//!    (user tower only) into a shadow [`UserArena`] and hot-swapped in as
//!    a new generation — no request ever observes a torn or
//!    mixed-generation arena, and the user has graduated cold→warm
//!    (`serve.graduations`).
//!
//! The hot path (`engine`/`shard`/`frontend`/`batcher`) is panic-free by
//! policy — om-lint's `panic-freedom` pass bans `unwrap`/`expect`/
//! panicking macros/direct indexing there — so every fallible step
//! surfaces as a typed [`ServeError`] instead of killing the worker.
//!
//! Everything runs under [`om_nn::inference_mode`]: no autograd tape, no
//! dropout masks, nothing drawn from any RNG — which is also why batched
//! results are **bitwise identical** to one-request-at-a-time results at
//! any `OM_THREADS` setting (every kernel in the forward is row-
//! independent with a fixed per-element reduction order).
//!
//! [`export_checkpoint`]: omnimatch_core::TrainedOmniMatch::export_checkpoint

pub mod arena;
pub mod batcher;
pub mod blob;
pub mod engine;
pub mod error;
pub mod frontend;
pub mod loader;
pub mod mmap;
pub mod quant;
pub mod shard;
pub mod update;

pub use arena::{ItemArena, UserArena};
pub use batcher::Microbatcher;
pub use blob::{ArenaBlob, BlobError, BlobKind, Verify};
pub use engine::{Request, Response, ServeEngine, ServeOptions};
pub use error::ServeError;
pub use frontend::{
    BatchScorer, Frontend, FrontendHandle, FrontendOptions, FrontendStats, StatsSnapshot,
    SubmitError,
};
pub use loader::{load_model, load_model_file};
pub use shard::ShardedEngine;
pub use update::{ArenaGeneration, ArenaSwap, InteractionStore, UpdateOutcome, UserEvent};
