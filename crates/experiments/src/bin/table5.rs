//! Regenerates **Table 5**: the ablation study. Each OmniMatch variant is
//! trained in the paper's data-scarce regime — 20 % of the overlapping
//! training users (§5.7) — on Books→Movies, Books→Music and Movies→Music
//! of the Amazon preset.

use om_data::{SynthConfig, SynthWorld};
use om_experiments::paper;
use om_experiments::report::Table;
use om_experiments::runner::{cli_trials, run_trials, Method};
use omnimatch_core::OmniMatchConfig;

fn variants() -> Vec<(&'static str, OmniMatchConfig)> {
    vec![
        ("w/o SCL", OmniMatchConfig::default().without_scl()),
        ("w/o DA", OmniMatchConfig::default().without_da()),
        (
            "w/o Aux Reviews",
            OmniMatchConfig::default().without_aux_reviews(),
        ),
        ("OmniMatch", OmniMatchConfig::default()),
        (
            "OmniMatch-ReviewText",
            OmniMatchConfig::default().with_full_review_text(),
        ),
        (
            "OmniMatch-BERT",
            OmniMatchConfig::default().with_transformer(),
        ),
    ]
}

fn main() {
    let _run = om_obs::run_scope("table5");
    let trials = cli_trials(2);
    om_obs::manifest_set("experiment.trials", (trials as u64).into());
    om_obs::info!("generating world ({trials} trial(s) per cell)…");
    let world = SynthWorld::generate(SynthConfig::amazon(), &["Books", "Movies", "Music"]);

    let mut header = vec!["Variant".to_string(), "Metric".to_string()];
    for (src, tgt) in paper::TABLE5_SCENARIOS {
        header.push(format!("{src} -> {tgt}"));
        header.push("paper".to_string());
    }
    let hdr_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table 5 — ablations at 20% training users (Amazon preset)",
        &hdr_refs,
    );

    for (vi, (name, cfg)) in variants().into_iter().enumerate() {
        let mut rmse_row = vec![name.to_string(), "RMSE".to_string()];
        let mut mae_row = vec![String::new(), "MAE".to_string()];
        for (si, (src, tgt)) in paper::TABLE5_SCENARIOS.iter().enumerate() {
            om_obs::info!("{name} on {src}->{tgt}…");
            let r = run_trials(
                &world,
                src,
                tgt,
                &Method::Ours(cfg.clone()),
                trials,
                0.2,
            );
            rmse_row.push(format!("{:.3}", r.rmse.mean));
            rmse_row.push(format!("{:.3}", paper::TABLE5_RMSE[vi][si]));
            mae_row.push(format!("{:.3}", r.mae.mean));
            mae_row.push(format!("{:.3}", paper::TABLE5_MAE[vi][si]));
        }
        table.row(rmse_row);
        table.row(mae_row);
    }

    println!("{}", table.render());
    table.write_tsv("table5.tsv").expect("write results TSV");
    println!("TSV written to results/table5.tsv");
}
