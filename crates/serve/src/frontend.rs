//! Threaded serving front-end: a bounded queue feeding the microbatcher.
//!
//! The engines and the [`crate::Microbatcher`] are synchronous and
//! caller-clocked; this module adds the missing production shape — many
//! request producers, one scoring consumer — without any new dependency:
//!
//! * producers hold a cloneable [`FrontendHandle`] over a **bounded**
//!   `std::sync::mpsc::sync_channel`; [`FrontendHandle::try_send`] never
//!   blocks and never panics — a full queue is an explicit, typed
//!   [`SubmitError::QueueFull`] rejection (admission control: shed load at
//!   the door instead of growing an unbounded queue until the process
//!   dies);
//! * one worker thread owns the scorer (engines hold `Rc`-based tensors
//!   and are not `Send`, so the worker *builds* the scorer itself from a
//!   `Send` factory closure), pumps arrivals into a microbatcher, and
//!   flushes on size or deadline exactly like the synchronous loop;
//! * [`Frontend::shutdown`] enqueues a stop marker **behind** every
//!   accepted request, so in-flight work drains — every accepted request
//!   gets a response before the worker exits — and returns the tallies.
//!
//! Backpressure, then, is the queue bound itself: a slow consumer can
//! hold at most `queue_cap` requests plus one in-progress microbatch in
//! memory, and everything beyond that is rejected at submit time where
//! the caller can retry, degrade, or shed. `tests/frontend.rs` pins all
//! three behaviours.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::batcher::Microbatcher;
use crate::engine::{Request, Response, ServeEngine};
use crate::shard::ShardedEngine;

/// Anything that can score a microbatch of requests. Both engines
/// qualify; tests substitute stubs to pin queue behaviour without a
/// model.
pub trait BatchScorer {
    /// Score a flushed microbatch, one [`Response`] per request, in
    /// request order.
    fn serve_batch(&self, reqs: &[Request]) -> Vec<Response>;
}

impl BatchScorer for ServeEngine {
    fn serve_batch(&self, reqs: &[Request]) -> Vec<Response> {
        ServeEngine::serve_batch(self, reqs)
    }
}

impl BatchScorer for ShardedEngine {
    fn serve_batch(&self, reqs: &[Request]) -> Vec<Response> {
        ShardedEngine::serve_batch(self, reqs)
    }
}

/// Front-end knobs; [`FrontendOptions::from_env`] also reads
/// `OM_SERVE_QUEUE` for the queue bound.
#[derive(Debug, Clone)]
pub struct FrontendOptions {
    /// Bounded queue capacity (`OM_SERVE_QUEUE`, default 256). Submits
    /// beyond this are rejected, not blocked.
    pub queue_cap: usize,
    /// Microbatch flush size (see [`crate::ServeOptions::batch`]).
    pub batch: usize,
    /// Max queueing delay before a partial batch flushes, microseconds.
    pub wait_us: u64,
}

impl Default for FrontendOptions {
    fn default() -> FrontendOptions {
        FrontendOptions { queue_cap: 256, batch: 8, wait_us: 2_000 }
    }
}

impl FrontendOptions {
    /// Batch/wait from `opts`, queue bound from `OM_SERVE_QUEUE` (default
    /// 256; unparsable or zero values fall back).
    pub fn from_serve(opts: &crate::ServeOptions) -> FrontendOptions {
        let queue_cap = std::env::var("OM_SERVE_QUEUE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&v| v > 0)
            .unwrap_or(FrontendOptions::default().queue_cap);
        FrontendOptions { queue_cap, batch: opts.batch, wait_us: opts.wait_us }
    }

    /// Defaults overridden by the `OM_SERVE_*` environment.
    pub fn from_env() -> FrontendOptions {
        FrontendOptions::from_serve(&crate::ServeOptions::from_env())
    }
}

/// Why a submit was not accepted. Both cases are the caller's signal to
/// back off; neither ever panics or blocks the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: the bounded queue is at capacity.
    QueueFull {
        /// The configured bound the queue is at.
        capacity: usize,
    },
    /// The worker has shut down; no further requests will be scored.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "serve queue full (capacity {capacity})")
            }
            SubmitError::Shutdown => write!(f, "serve front-end is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// End-of-run tallies from [`Frontend::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendStats {
    /// Requests scored (every accepted request is served, even on
    /// shutdown).
    pub served: u64,
    /// Microbatch flushes executed.
    pub flushes: u64,
    /// Submits rejected by admission control.
    pub rejected: u64,
}

enum Msg {
    Req(Request),
    Stop,
}

/// A producer's handle: clone freely, submit from any thread.
#[derive(Clone)]
pub struct FrontendHandle {
    tx: SyncSender<Msg>,
    capacity: usize,
    rejected: Arc<AtomicU64>,
}

impl FrontendHandle {
    /// Try to enqueue `req`. Never blocks: a full queue or a stopped
    /// worker returns a typed error immediately.
    pub fn try_send(&self, req: Request) -> Result<(), SubmitError> {
        match self.tx.try_send(Msg::Req(req)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                om_obs::metrics::counter("serve.frontend.rejected").add(1);
                Err(SubmitError::QueueFull { capacity: self.capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Shutdown),
        }
    }

    /// Submits rejected so far (shared across clones).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// The worker end: owns the scoring thread; [`Frontend::shutdown`] drains
/// and joins it.
pub struct Frontend {
    handle: FrontendHandle,
    worker: std::thread::JoinHandle<(u64, u64)>,
}

impl Frontend {
    /// Spawn the consumer thread. `factory` runs *on the worker* to build
    /// the scorer there (engines are not `Send`); `responses` receives
    /// every scored [`Response`] in flush order.
    // om-lint: allow(thread-spawn) — this *is* the sanctioned spawn point:
    // the one long-lived consumer thread of the serving front-end.
    pub fn spawn<S, F>(
        factory: F,
        opts: FrontendOptions,
        responses: Sender<Response>,
    ) -> Frontend
    where
        S: BatchScorer,
        F: FnOnce() -> S + Send + 'static,
    {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Msg>(opts.queue_cap.max(1));
        let batch = opts.batch.max(1);
        let wait_us = opts.wait_us;
        let worker = std::thread::Builder::new()
            .name("om-serve-frontend".into())
            // om-lint: allow(thread-spawn) — the front-end consumer is the
            // one long-lived thread the serving shape requires; scoring
            // inside it still fans out over the om_tensor::runtime pool.
            .spawn(move || {
                let scorer = factory();
                let mut batcher = Microbatcher::new(batch, wait_us);
                let start = Instant::now();
                let mut served: u64 = 0;
                let mut flushes: u64 = 0;
                let mut flush = |reqs: Vec<Request>| {
                    let out = scorer.serve_batch(&reqs);
                    served += out.len() as u64;
                    flushes += 1;
                    for resp in out {
                        // A dropped receiver just discards responses; the
                        // worker still drains so shutdown stays orderly.
                        let _ = responses.send(resp);
                    }
                };
                loop {
                    let now_us = start.elapsed().as_micros() as u64;
                    let timeout = if batcher.pending() > 0 {
                        let deadline = batcher.oldest_us().saturating_add(wait_us);
                        Duration::from_micros(deadline.saturating_sub(now_us))
                    } else {
                        // Idle: nothing is pending, so nothing can time
                        // out; wake occasionally to stay responsive to a
                        // dropped producer side.
                        Duration::from_millis(50)
                    };
                    match rx.recv_timeout(timeout) {
                        Ok(Msg::Req(req)) => {
                            let now_us = start.elapsed().as_micros() as u64;
                            if let Some(batch) = batcher.submit(req, now_us) {
                                flush(batch);
                            }
                        }
                        Ok(Msg::Stop) => break,
                        Err(RecvTimeoutError::Timeout) => {
                            let now_us = start.elapsed().as_micros() as u64;
                            if let Some(batch) = batcher.poll(now_us) {
                                flush(batch);
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                // Handle clones may race a submit past the stop marker;
                // anything already accepted still gets served.
                while let Ok(Msg::Req(req)) = rx.try_recv() {
                    let now_us = start.elapsed().as_micros() as u64;
                    if let Some(batch) = batcher.submit(req, now_us) {
                        flush(batch);
                    }
                }
                if let Some(rest) = batcher.drain() {
                    flush(rest);
                }
                om_obs::metrics::counter("serve.frontend.served").add(served);
                (served, flushes)
            })
            .expect("spawn serve front-end worker");
        let handle = FrontendHandle {
            tx,
            capacity: opts.queue_cap.max(1),
            rejected: Arc::new(AtomicU64::new(0)),
        };
        Frontend { handle, worker }
    }

    /// A producer handle (clone per producer thread).
    pub fn handle(&self) -> FrontendHandle {
        self.handle.clone()
    }

    /// Stop accepting work, drain everything already accepted, join the
    /// worker, and return the tallies. The stop marker queues *behind*
    /// accepted requests, so none are dropped.
    pub fn shutdown(self) -> FrontendStats {
        // A blocking send: waits for queue space behind the accepted
        // backlog. If the worker already exited (disconnected), join
        // anyway.
        let _ = self.handle.tx.send(Msg::Stop);
        let rejected = self.handle.rejected();
        let (served, flushes) = self.worker.join().expect("serve front-end worker panicked");
        FrontendStats { served, flushes, rejected }
    }
}
