//! Offline representation precompute: contiguous embedding arenas.
//!
//! The towers are the expensive half of scoring (TextCNN over a review
//! document per entity); the rating head is a small MLP over concatenated
//! features. Serving therefore encodes every target-domain item — and
//! every warm user — **once**, into row-major `[n, dim]` f32 arenas, and
//! a request only runs the user tower when its user is cold (or not even
//! that, for warm users).
//!
//! Determinism: every forward here runs under [`om_nn::inference_mode`]
//! (no tape, no dropout, nothing drawn from the RNG), and every kernel in
//! the tower is row-independent with a fixed per-element reduction order,
//! so arena rows are bitwise identical no matter how the precompute was
//! batched — and bitwise identical to a tower run at request time. Tests
//! assert both.

use std::collections::BTreeMap;
use std::path::Path;

use om_data::types::{ItemId, UserId};
use om_tensor::seeded_rng;
use omnimatch_core::model::DomainSide;
use omnimatch_core::{CorpusViews, OmniMatchModel};

use crate::blob::{write_blob, write_blob_q8, ArenaBlob, BlobError, BlobKind, Verify};
use crate::quant;

/// Backing storage of an arena's `[len, dim]` feature block: owned rows
/// from a tower precompute / raw synthesis, or a zero-copy window into a
/// memory-mapped [`ArenaBlob`]. Scoring reads the same `&[f32]` either
/// way, so every engine path is storage-agnostic (and the blob round-trip
/// test can demand bitwise-equal scores).
pub(crate) enum Rows {
    /// Heap-owned rows.
    Owned(Vec<f32>),
    /// Rows borrowed from a memory-mapped blob.
    Mapped(crate::mmap::F32View),
}

impl Rows {
    fn as_slice(&self) -> &[f32] {
        match self {
            Rows::Owned(v) => v,
            Rows::Mapped(m) => m.as_slice(),
        }
    }
}

/// Backing storage of a quantized arena's int8 codes — the i8 twin of
/// [`Rows`].
pub(crate) enum QBytes {
    /// Heap-owned codes.
    Owned(Vec<i8>),
    /// Codes borrowed from a memory-mapped blob.
    Mapped(crate::mmap::I8View),
}

impl QBytes {
    fn as_slice(&self) -> &[i8] {
        match self {
            QBytes::Owned(v) => v,
            QBytes::Mapped(m) => m.as_slice(),
        }
    }
}

/// An arena's payload: the exact f32 rows of the tower precompute, or
/// the int8-per-row-scale serving quantization of them (`--quantized`,
/// see [`crate::quant`]). Training and checkpoints never see `Q8`; the
/// scoring paths read both through [`ItemArena::rows_f32`] /
/// [`UserArena::copy_row_into`], which dequantize on the fly.
pub(crate) enum Payload {
    /// Exact f32 rows.
    F32(Rows),
    /// Per-row-scale int8 codes (`q[r*dim + c] as f32 * scales[r]`).
    Q8 {
        /// `[len, dim]` codes.
        q: QBytes,
        /// `[len]` dequantization scales.
        scales: Rows,
    },
}

impl Payload {
    fn len(&self) -> usize {
        match self {
            Payload::F32(rows) => rows.as_slice().len(),
            Payload::Q8 { q, .. } => q.as_slice().len(),
        }
    }

    fn is_quantized(&self) -> bool {
        matches!(self, Payload::Q8 { .. })
    }
}

/// Every target-domain item's features, `[len, dim]` row-major.
pub struct ItemArena {
    ids: Vec<ItemId>,
    index: BTreeMap<ItemId, usize>,
    data: Payload,
    dim: usize,
}

impl ItemArena {
    /// Encode all items of `views` (dense-index order) in batches of
    /// `batch` documents. The batch size is a throughput knob only; it
    /// cannot affect any bit of the result.
    pub fn build(model: &OmniMatchModel, views: &CorpusViews, batch: usize) -> ItemArena {
        let _mode = om_nn::inference_mode();
        let ids = views.items();
        let dim = model.config().item_dim;
        let mut data = Vec::with_capacity(ids.len() * dim);
        // Never drawn from under inference mode; the signature demands one.
        let mut rng = seeded_rng(0);
        for chunk in ids.chunks(batch.max(1)) {
            let docs: Vec<&[usize]> = chunk.iter().map(|&i| views.item_doc(i)).collect();
            let feats = model.item_features(&docs, false, &mut rng);
            data.extend_from_slice(&feats.data());
        }
        ItemArena::from_rows(ids, Rows::Owned(data), dim)
    }

    /// Assemble an arena from pre-computed feature rows (e.g. the
    /// serving-scale synthetic presets of `om_data::synth`). `data` is
    /// `[ids.len(), dim]` row-major; ids must be unique.
    pub fn from_raw(ids: Vec<ItemId>, data: Vec<f32>, dim: usize) -> ItemArena {
        ItemArena::from_rows(ids, Rows::Owned(data), dim)
    }

    pub(crate) fn from_rows(ids: Vec<ItemId>, data: Rows, dim: usize) -> ItemArena {
        ItemArena::from_payload(ids, Payload::F32(data), dim)
    }

    pub(crate) fn from_payload(ids: Vec<ItemId>, data: Payload, dim: usize) -> ItemArena {
        assert_eq!(data.len(), ids.len() * dim, "ragged item arena");
        if let Payload::Q8 { scales, .. } = &data {
            assert_eq!(scales.as_slice().len(), ids.len(), "one scale per quantized arena row");
        }
        let index: BTreeMap<ItemId, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        assert_eq!(index.len(), ids.len(), "duplicate item ids in arena");
        ItemArena { ids, index, data, dim }
    }

    /// The int8-per-row-scale serving quantization of this arena (see
    /// [`crate::quant`]). The source must hold exact f32 rows — this is
    /// the one f32 → int8 conversion point, there is no re-quantize.
    pub fn quantized(&self) -> ItemArena {
        let data = match &self.data {
            Payload::F32(rows) => rows.as_slice(),
            Payload::Q8 { .. } => panic!("arena is already quantized"),
        };
        let (q, scales) = quant::quantize_rows(data, self.ids.len(), self.dim);
        ItemArena::from_payload(
            self.ids.clone(),
            Payload::Q8 { q: QBytes::Owned(q), scales: Rows::Owned(scales) },
            self.dim,
        )
    }

    /// Whether the arena stores int8 codes rather than exact f32 rows.
    pub fn is_quantized(&self) -> bool {
        self.data.is_quantized()
    }

    /// Load an arena from an `OMAB` blob written by
    /// [`ItemArena::write_blob`] — v1 maps the f32 block zero-copy, v2
    /// maps the quantized payload.
    pub fn load_blob(path: &Path, verify: Verify) -> Result<ItemArena, BlobError> {
        let blob = ArenaBlob::open(path, verify)?;
        if blob.kind() != BlobKind::Items {
            return Err(BlobError::WrongKind { expected: BlobKind::Items, found: blob.kind() });
        }
        let ids = blob.ids().into_iter().map(ItemId).collect();
        let payload = if blob.is_quantized() {
            let (q, scales) = blob.q8_payload();
            Payload::Q8 { q, scales }
        } else {
            Payload::F32(blob.feature_rows())
        };
        Ok(ItemArena::from_payload(ids, payload, blob.dim()))
    }

    /// Serialize the arena to a length/CRC-framed `OMAB` blob at `path`
    /// (atomic write → fsync → rename) — v1 for f32 arenas, v2 for
    /// quantized ones.
    pub fn write_blob(&self, path: &Path) -> Result<(), BlobError> {
        let ids: Vec<u32> = self.ids.iter().map(|id| id.0).collect();
        match &self.data {
            Payload::F32(rows) => write_blob(path, BlobKind::Items, self.dim, &ids, rows.as_slice()),
            Payload::Q8 { q, scales } => write_blob_q8(
                path,
                BlobKind::Items,
                self.dim,
                &ids,
                q.as_slice(),
                scales.as_slice(),
            ),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Feature width per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The contiguous `[len, dim]` f32 feature block. Panics on a
    /// quantized arena, which has no borrowable f32 form — the scoring
    /// paths go through [`ItemArena::rows_f32`] instead, which handles
    /// both representations.
    pub fn data(&self) -> &[f32] {
        match &self.data {
            Payload::F32(rows) => rows.as_slice(),
            Payload::Q8 { .. } => {
                panic!("ItemArena::data on a quantized arena; use rows_f32")
            }
        }
    }

    /// Rows `lo..hi` as f32, storage-agnostic: a borrow of the arena for
    /// f32 payloads, a dequantization into `scratch` for quantized ones
    /// (`om_tensor::kernels::dequant_rows` — AVX2 when dispatched, and
    /// bitwise identical to the scalar twin either way, so shard/batch
    /// grouping still cannot move a result bit). `lo <= hi <= len`.
    pub fn rows_f32<'a>(&'a self, lo: usize, hi: usize, scratch: &'a mut Vec<f32>) -> &'a [f32] {
        assert!(lo <= hi && hi <= self.ids.len(), "arena row range out of bounds");
        match &self.data {
            Payload::F32(rows) => &rows.as_slice()[lo * self.dim..hi * self.dim],
            Payload::Q8 { q, scales } => {
                if self.dim == 0 || lo == hi {
                    scratch.clear();
                } else {
                    *scratch = om_tensor::kernels::dequant_rows(
                        &q.as_slice()[lo * self.dim..hi * self.dim],
                        &scales.as_slice()[lo..hi],
                        self.dim,
                    );
                }
                &scratch[..]
            }
        }
    }

    /// Item at arena row `i`.
    pub fn id_at(&self, i: usize) -> ItemId {
        self.ids[i]
    }

    /// Arena row of `item`, if present.
    pub fn row_of(&self, item: ItemId) -> Option<usize> {
        self.index.get(&item).copied()
    }
}

/// Warm users' combined target-side features, `[len, dim]` row-major.
/// Cold users are deliberately absent: their tower runs at request time
/// over the auxiliary document (that tower pass *is* the cold-start
/// inference the paper describes).
pub struct UserArena {
    ids: Vec<UserId>,
    index: BTreeMap<UserId, usize>,
    data: Payload,
    dim: usize,
}

impl UserArena {
    /// Encode `warm` users' target documents in batches of `batch`.
    /// Unknown users are skipped (they cannot be encoded without a
    /// document); duplicates collapse to one row.
    pub fn build(
        model: &OmniMatchModel,
        views: &CorpusViews,
        warm: &[UserId],
        batch: usize,
    ) -> UserArena {
        let _mode = om_nn::inference_mode();
        let cfg = model.config();
        let dim = cfg.invariant_dim + cfg.specific_dim;
        // Dedupe preserving *first-occurrence* order: a BTreeSet collect
        // would silently re-sort the arena by id, and a non-deduping pass
        // would feed `from_rows` duplicate ids (redundant rows plus a
        // last-write-wins index), skewing `len()` and
        // `serve.arena.warm_users`.
        let known: Vec<UserId> = {
            let mut seen = BTreeMap::new();
            let mut ordered = Vec::new();
            for &u in warm {
                if views.user_idx(u).is_some() && seen.insert(u, ()).is_none() {
                    ordered.push(u);
                }
            }
            ordered
        };
        let mut data = Vec::with_capacity(known.len() * dim);
        let mut rng = seeded_rng(0);
        for chunk in known.chunks(batch.max(1)) {
            let docs: Vec<&[usize]> = chunk.iter().map(|&u| views.target_doc(u)).collect();
            let feats = model.user_features(&docs, DomainSide::Target, false, &mut rng);
            data.extend_from_slice(&feats.combined.data());
        }
        UserArena::from_rows(known, Rows::Owned(data), dim)
    }

    /// Assemble an arena from pre-computed combined feature rows. `data`
    /// is `[ids.len(), dim]` row-major; ids must be unique.
    pub fn from_raw(ids: Vec<UserId>, data: Vec<f32>, dim: usize) -> UserArena {
        UserArena::from_rows(ids, Rows::Owned(data), dim)
    }

    pub(crate) fn from_rows(ids: Vec<UserId>, data: Rows, dim: usize) -> UserArena {
        UserArena::from_payload(ids, Payload::F32(data), dim)
    }

    pub(crate) fn from_payload(ids: Vec<UserId>, data: Payload, dim: usize) -> UserArena {
        assert_eq!(data.len(), ids.len() * dim, "ragged user arena");
        if let Payload::Q8 { scales, .. } = &data {
            assert_eq!(scales.as_slice().len(), ids.len(), "one scale per quantized arena row");
        }
        let index: BTreeMap<UserId, usize> =
            ids.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        assert_eq!(index.len(), ids.len(), "duplicate user ids in arena");
        UserArena { ids, index, data, dim }
    }

    /// The int8-per-row-scale serving quantization of this arena (see
    /// [`crate::quant`]). The source must hold exact f32 rows.
    pub fn quantized(&self) -> UserArena {
        let data = match &self.data {
            Payload::F32(rows) => rows.as_slice(),
            Payload::Q8 { .. } => panic!("arena is already quantized"),
        };
        let (q, scales) = quant::quantize_rows(data, self.ids.len(), self.dim);
        UserArena::from_payload(
            self.ids.clone(),
            Payload::Q8 { q: QBytes::Owned(q), scales: Rows::Owned(scales) },
            self.dim,
        )
    }

    /// Whether the arena stores int8 codes rather than exact f32 rows.
    pub fn is_quantized(&self) -> bool {
        self.data.is_quantized()
    }

    /// Load an arena from an `OMAB` blob written by
    /// [`UserArena::write_blob`] — v1 maps the f32 block zero-copy, v2
    /// maps the quantized payload.
    pub fn load_blob(path: &Path, verify: Verify) -> Result<UserArena, BlobError> {
        let blob = ArenaBlob::open(path, verify)?;
        if blob.kind() != BlobKind::Users {
            return Err(BlobError::WrongKind { expected: BlobKind::Users, found: blob.kind() });
        }
        let ids = blob.ids().into_iter().map(UserId).collect();
        let payload = if blob.is_quantized() {
            let (q, scales) = blob.q8_payload();
            Payload::Q8 { q, scales }
        } else {
            Payload::F32(blob.feature_rows())
        };
        Ok(UserArena::from_payload(ids, payload, blob.dim()))
    }

    /// Serialize the arena to a length/CRC-framed `OMAB` blob at `path`
    /// (atomic write → fsync → rename) — v1 for f32 arenas, v2 for
    /// quantized ones.
    pub fn write_blob(&self, path: &Path) -> Result<(), BlobError> {
        let ids: Vec<u32> = self.ids.iter().map(|u| u.0).collect();
        match &self.data {
            Payload::F32(rows) => write_blob(path, BlobKind::Users, self.dim, &ids, rows.as_slice()),
            Payload::Q8 { q, scales } => write_blob_q8(
                path,
                BlobKind::Users,
                self.dim,
                &ids,
                q.as_slice(),
                scales.as_slice(),
            ),
        }
    }

    /// Number of warm users held.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Feature width per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Warm users in arena row order.
    pub fn ids(&self) -> &[UserId] {
        &self.ids
    }

    /// Whether `user` has a cached row (warm) in this arena.
    pub fn contains(&self, user: UserId) -> bool {
        self.index.contains_key(&user)
    }

    /// The cached combined features of `user`, if warm. Panics on a
    /// quantized arena, whose rows have no borrowable f32 form — the
    /// engine goes through [`UserArena::copy_row_into`] instead.
    pub fn row(&self, user: UserId) -> Option<&[f32]> {
        let &i = self.index.get(&user)?;
        match &self.data {
            Payload::F32(rows) => Some(&rows.as_slice()[i * self.dim..(i + 1) * self.dim]),
            Payload::Q8 { .. } => panic!("UserArena::row on a quantized arena; use copy_row_into"),
        }
    }

    /// Copy `user`'s combined features into `dst` (which must be exactly
    /// [`UserArena::dim`] long), dequantizing if the arena is quantized.
    /// Returns false — leaving `dst` untouched — when the user is cold.
    pub fn copy_row_into(&self, user: UserId, dst: &mut [f32]) -> bool {
        debug_assert_eq!(dst.len(), self.dim, "destination row width");
        let Some(&i) = self.index.get(&user) else {
            return false;
        };
        match &self.data {
            Payload::F32(rows) => {
                dst.copy_from_slice(&rows.as_slice()[i * self.dim..(i + 1) * self.dim]);
            }
            Payload::Q8 { q, scales } => {
                let scale = scales.as_slice()[i];
                let codes = &q.as_slice()[i * self.dim..(i + 1) * self.dim];
                for (d, &c) in dst.iter_mut().zip(codes) {
                    *d = c as f32 * scale;
                }
            }
        }
        true
    }

    /// A copy of this arena with `user`'s row set to `row`: overwritten in
    /// place if the user is already warm, appended (graduation) otherwise.
    /// This is the shadow-arena build of the online update path — the live
    /// arena is never mutated; callers publish the returned arena through
    /// [`crate::update::ArenaSwap::install`]. `row.len()` must equal
    /// [`UserArena::dim`] (the engine checks and refuses with a typed
    /// error before calling). On a quantized arena the fresh f32 row is
    /// quantized on entry, so a quantized engine stays quantized across
    /// online cold→warm graduations.
    pub fn with_row(&self, user: UserId, row: &[f32]) -> UserArena {
        assert_eq!(row.len(), self.dim, "ragged user arena");
        let mut ids = self.ids.clone();
        match &self.data {
            Payload::F32(rows) => {
                let mut data = rows.as_slice().to_vec();
                match self.index.get(&user) {
                    Some(&i) => data[i * self.dim..(i + 1) * self.dim].copy_from_slice(row),
                    None => {
                        ids.push(user);
                        data.extend_from_slice(row);
                    }
                }
                UserArena::from_rows(ids, Rows::Owned(data), self.dim)
            }
            Payload::Q8 { q, scales } => {
                let mut qrow = Vec::with_capacity(self.dim);
                let scale = quant::quantize_row_into(row, &mut qrow);
                let mut qdata = q.as_slice().to_vec();
                let mut sdata = scales.as_slice().to_vec();
                match self.index.get(&user) {
                    Some(&i) => {
                        qdata[i * self.dim..(i + 1) * self.dim].copy_from_slice(&qrow);
                        sdata[i] = scale;
                    }
                    None => {
                        ids.push(user);
                        qdata.extend_from_slice(&qrow);
                        sdata.push(scale);
                    }
                }
                UserArena::from_payload(
                    ids,
                    Payload::Q8 { q: QBytes::Owned(qdata), scales: Rows::Owned(sdata) },
                    self.dim,
                )
            }
        }
    }
}
