//! Raw kernel throughput: the blocked/parallel GEMM and the chunked
//! reduction against problem size. Run with `OM_THREADS=1` and with the
//! default pool to see the parallel layer's speedup in isolation; the
//! outputs are bit-identical either way (see om-tensor `tests/parity.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_tensor::kernels;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/gemm");
    group.sample_size(20);
    for &n in &[64usize, 128, 256] {
        let a: Vec<f32> = (0..n * n).map(|i| ((i * 37) % 101) as f32 * 0.02 - 1.0).collect();
        let b: Vec<f32> = (0..n * n).map(|i| ((i * 53) % 89) as f32 * 0.02 - 0.9).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let mut out = vec![0.0f32; n * n];
            bench.iter(|| {
                kernels::gemm(&a, &b, &mut out, n, n, n);
                std::hint::black_box(out[0])
            })
        });
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/sum");
    group.sample_size(20);
    for &len in &[4096usize, 262_144, 1 << 21] {
        let x: Vec<f32> = (0..len).map(|i| ((i * 13) % 97) as f32 * 0.01 - 0.5).collect();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |bench, _| {
            bench.iter(|| std::hint::black_box(kernels::sum(&x)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_reduce);
criterion_main!(benches);
