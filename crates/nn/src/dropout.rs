//! Inverted dropout. The paper applies dropout 0.4 after every linear layer
//! (§5.4).

use om_tensor::{Rng, Tensor};
use rand::RngExt as _;

/// Inverted dropout: at train time each element is zeroed with probability
/// `rate` and survivors are scaled by `1/(1-rate)`, so evaluation is a
/// no-op.
pub struct Dropout {
    rate: f32,
}

impl Dropout {
    /// Create with drop probability `rate ∈ [0, 1)`.
    pub fn new(rate: f32) -> Dropout {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1)");
        Dropout { rate }
    }

    /// The configured drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// Apply dropout. `training = false` (or `rate == 0`) returns the input
    /// unchanged, as does an active [`crate::inference::inference_mode`]
    /// scope — a serving path must never draw a mask, even if a caller
    /// passes `training = true` by mistake.
    pub fn forward(&self, x: &Tensor, training: bool, rng: &mut Rng) -> Tensor {
        if !training || self.rate == 0.0 || crate::inference::is_inference() {
            return x.clone();
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..x.numel())
            .map(|_| if rng.random::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(mask, x.dims());
        x.mul(&mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_tensor::seeded_rng;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.4);
        let x = Tensor::ones(&[10]);
        let y = d.forward(&x, false, &mut seeded_rng(1));
        assert_eq!(y.to_vec(), vec![1.0; 10]);
    }

    #[test]
    fn zero_rate_is_identity_even_training() {
        let d = Dropout::new(0.0);
        let x = Tensor::ones(&[10]);
        let y = d.forward(&x, true, &mut seeded_rng(1));
        assert_eq!(y.to_vec(), vec![1.0; 10]);
    }

    #[test]
    fn surviving_elements_are_rescaled() {
        let d = Dropout::new(0.5);
        let x = Tensor::ones(&[1000]);
        let y = d.forward(&x, true, &mut seeded_rng(2));
        let v = y.to_vec();
        assert!(v.iter().all(|&e| e == 0.0 || (e - 2.0).abs() < 1e-6));
        // roughly half survive
        let kept = v.iter().filter(|&&e| e > 0.0).count();
        assert!((350..650).contains(&kept), "kept {kept}");
    }

    #[test]
    fn expectation_is_preserved() {
        let d = Dropout::new(0.4);
        let x = Tensor::ones(&[20_000]);
        let y = d.forward(&x, true, &mut seeded_rng(3));
        let mean: f32 = y.to_vec().iter().sum::<f32>() / 20_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gradient_respects_mask() {
        let d = Dropout::new(0.5);
        let x = Tensor::ones(&[100]).requires_grad();
        let y = d.forward(&x, true, &mut seeded_rng(4));
        y.sum_all().backward();
        let g = x.grad_vec().unwrap();
        let out = y.to_vec();
        for (gi, oi) in g.iter().zip(&out) {
            assert_eq!(gi, oi); // grad equals mask value (0 or 2)
        }
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn invalid_rate_panics() {
        let _ = Dropout::new(1.0);
    }
}
