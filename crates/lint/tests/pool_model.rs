//! Exhaustive model check of the tensor runtime's dispatch/join protocol
//! (`crates/tensor/src/runtime.rs`), driven by `om_lint::interleave` — the
//! repo's loom stand-in.
//!
//! The modelled protocol, step for step:
//!
//! * the **caller** (`parallel_for`) enqueues `jobs` closures one `send`
//!   at a time, runs its own range inline, then joins via `Latch::wait`:
//!   lock the latch mutex, and while `remaining > 0`
//!   atomically-release-and-sleep on the condvar (`Condvar::wait` IS
//!   atomic — modelled as one step), reacquiring and rechecking on wakeup;
//! * each **worker** pulls one job at a time from the shared queue (the
//!   `Mutex<Receiver>` serialises `recv`, so taking a job is one atomic
//!   step), executes the range, then runs `Latch::count_down`: lock,
//!   decrement, notify-if-zero, unlock — all under the mutex, hence fused
//!   into one model step.
//!
//! Verified for every interleaving, across worker counts and backlog
//! shapes (more jobs than workers): no deadlock, no lost wakeup, every
//! range executed exactly once, the caller's join only completes when
//! `remaining == 0`. The panic path (a job that fails but still counts
//! down, as `catch_unwind` guarantees) is covered too.
//!
//! A deliberately broken variant — checking `remaining` *outside* the
//! mutex before sleeping, the classic TOCTOU/lost-wakeup bug the real
//! `Latch` avoids — must be caught by the explorer as a deadlock, which
//! demonstrates the model is strong enough to see the bug class it
//! guards against.

use om_lint::interleave::{explore, Model};

/// Thread id 0 is the caller; ids `1..=workers` are pool workers.
const CALLER: usize = 0;

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum CallerPc {
    /// Enqueued `k` of `jobs` so far; next step sends job `k`.
    Send(usize),
    /// Run the caller's own range (range index 0).
    RunOwn,
    /// `Latch::wait`: acquire the latch mutex.
    WaitAcquire,
    /// Holding the mutex: recheck `remaining`.
    WaitCheck,
    /// In the condvar waitset, mutex released.
    Sleeping,
    /// Join complete.
    Done,
    /// Broken variant: about to read `remaining` with NO mutex held.
    BrokenCheck,
    /// Broken variant: decided to sleep; registering is a separate step —
    /// the race window.
    BrokenRegister,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum WorkerPc {
    /// Blocked on the job queue.
    Idle,
    /// Executed a range; now `Latch::count_down` — acquire the mutex.
    CountAcquire,
}

/// Full system state. `Ord`-keyed so exploration is deterministic.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct PoolModel {
    caller: CallerPc,
    workers: Vec<WorkerPc>,
    /// FIFO of enqueued-but-unclaimed range indices.
    queue: Vec<usize>,
    /// Execution count per range (index 0 = the caller's own range).
    executed: Vec<u8>,
    /// `Latch::remaining`.
    remaining: usize,
    /// Latch mutex holder (thread id), if any.
    mutex: Option<usize>,
    /// Caller registered in the condvar waitset.
    waiting: bool,
    /// Pending wakeup for the caller (a `notify_one` it has not consumed).
    wake: bool,
    /// Range index whose job "panics" (still counts down via
    /// `catch_unwind`), if any.
    panicking: Option<usize>,
    /// Model the broken check-then-sleep join instead of the real one.
    broken: bool,
}

impl PoolModel {
    fn new(workers: usize, jobs: usize, panicking: Option<usize>, broken: bool) -> PoolModel {
        PoolModel {
            caller: CallerPc::Send(0),
            workers: vec![WorkerPc::Idle; workers],
            queue: Vec::new(),
            executed: vec![0; jobs + 1],
            remaining: jobs,
            mutex: None,
            waiting: false,
            wake: false,
            panicking,
            broken,
        }
    }

    fn jobs(&self) -> usize {
        self.executed.len() - 1
    }

    /// Mark a range executed (panicking ranges count down but produce no
    /// output — `catch_unwind` swallows the body).
    fn execute(&mut self, range: usize) {
        if self.panicking != Some(range) {
            self.executed[range] += 1;
        }
    }
}

impl Model for PoolModel {
    fn runnable(&self) -> Vec<usize> {
        let mut r = Vec::new();
        let caller_can = match self.caller {
            CallerPc::Send(_) | CallerPc::RunOwn => true,
            CallerPc::WaitAcquire => self.mutex.is_none(),
            CallerPc::WaitCheck => true,
            CallerPc::Sleeping => self.wake,
            CallerPc::Done => false,
            CallerPc::BrokenCheck | CallerPc::BrokenRegister => true,
        };
        if caller_can {
            r.push(CALLER);
        }
        for (w, pc) in self.workers.iter().enumerate() {
            let can = match pc {
                WorkerPc::Idle => !self.queue.is_empty(),
                WorkerPc::CountAcquire => self.mutex.is_none(),
            };
            if can {
                r.push(w + 1);
            }
        }
        r
    }

    fn step(&self, tid: usize) -> Self {
        let mut s = self.clone();
        if tid == CALLER {
            match s.caller {
                CallerPc::Send(k) => {
                    s.queue.push(k + 1); // range indices 1..=jobs
                    s.caller = if k + 1 == s.jobs() {
                        CallerPc::RunOwn
                    } else {
                        CallerPc::Send(k + 1)
                    };
                }
                CallerPc::RunOwn => {
                    s.execute(0);
                    s.caller = if s.broken {
                        CallerPc::BrokenCheck
                    } else {
                        CallerPc::WaitAcquire
                    };
                }
                CallerPc::WaitAcquire => {
                    s.mutex = Some(CALLER);
                    s.caller = CallerPc::WaitCheck;
                }
                CallerPc::WaitCheck => {
                    if s.remaining == 0 {
                        s.mutex = None;
                        s.caller = CallerPc::Done;
                    } else {
                        // Condvar::wait: register + release in ONE atomic
                        // step — this is exactly what makes the real
                        // protocol lost-wakeup-free.
                        s.waiting = true;
                        s.mutex = None;
                        s.caller = CallerPc::Sleeping;
                    }
                }
                CallerPc::Sleeping => {
                    s.wake = false;
                    s.waiting = false;
                    s.caller = CallerPc::WaitAcquire;
                }
                CallerPc::Done => unreachable!("Done is terminal"),
                CallerPc::BrokenCheck => {
                    // BUG under test: read `remaining` without the mutex…
                    s.caller = if s.remaining == 0 {
                        CallerPc::Done
                    } else {
                        CallerPc::BrokenRegister
                    };
                }
                CallerPc::BrokenRegister => {
                    // …then register as a SECOND step. A count_down landing
                    // between the two notifies nobody: lost wakeup.
                    s.waiting = true;
                    s.caller = CallerPc::Sleeping;
                }
            }
            return s;
        }
        let w = tid - 1;
        match s.workers[w] {
            WorkerPc::Idle => {
                let range = s.queue.remove(0);
                s.execute(range);
                s.workers[w] = WorkerPc::CountAcquire;
            }
            WorkerPc::CountAcquire => {
                // count_down() entirely under the latch mutex: decrement,
                // notify if zero, unlock — fused into one atomic step.
                s.mutex = Some(tid);
                s.remaining -= 1;
                if s.remaining == 0 && s.waiting {
                    s.wake = true;
                }
                s.mutex = None;
                s.workers[w] = WorkerPc::Idle;
            }
        }
        s
    }

    fn is_terminal_ok(&self) -> bool {
        self.caller == CallerPc::Done
            && self.remaining == 0
            && self.queue.is_empty()
            && self.workers.iter().all(|w| *w == WorkerPc::Idle)
            && self
                .executed
                .iter()
                .enumerate()
                .all(|(r, &n)| n == u8::from(self.panicking != Some(r)))
    }

    fn invariant(&self) -> Result<(), String> {
        if self.executed.iter().any(|&n| n > 1) {
            return Err("a range executed more than once".to_string());
        }
        if self.caller == CallerPc::Done && self.remaining != 0 {
            return Err("caller joined before all jobs counted down".to_string());
        }
        Ok(())
    }
}

#[test]
fn dispatch_join_protocol_verifies_across_pool_shapes() {
    // (workers, jobs): includes backlog shapes where jobs > workers, the
    // single-worker pool, and workers that never get a job.
    for (workers, jobs) in [(1, 1), (1, 3), (2, 1), (2, 2), (2, 4), (3, 3)] {
        let stats = explore(PoolModel::new(workers, jobs, None, false))
            .unwrap_or_else(|e| panic!("{workers} workers / {jobs} jobs: {e}"));
        assert!(
            stats.states > jobs,
            "{workers}w/{jobs}j explored suspiciously few states: {stats:?}"
        );
    }
}

#[test]
fn panic_path_still_joins() {
    // A panicking job must not deadlock the join: catch_unwind counts the
    // latch down regardless. Panic in a worker job and in no job at all;
    // also the last job, which is the one that wakes the caller.
    for (workers, jobs, p) in [(2, 2, Some(1)), (2, 3, Some(3)), (1, 2, Some(2))] {
        explore(PoolModel::new(workers, jobs, p, false))
            .unwrap_or_else(|e| panic!("panicking range {p:?}: {e}"));
    }
}

#[test]
fn broken_check_then_sleep_join_is_caught_as_deadlock() {
    // The TOCTOU variant MUST fail: this proves the explorer actually
    // exercises the interleaving where the last count_down slips between
    // the caller's unlocked check and its registration.
    let err = explore(PoolModel::new(2, 2, None, true))
        .expect_err("broken latch must deadlock under some interleaving");
    assert!(err.contains("deadlock"), "unexpected failure mode: {err}");
    assert!(err.contains("Sleeping"), "should die asleep: {err}");
}

#[test]
fn single_worker_broken_variant_also_deadlocks() {
    // Even one worker suffices for the lost wakeup.
    assert!(explore(PoolModel::new(1, 1, None, true)).is_err());
}
