//! Synthetic review-corpus simulator — the stand-in for the Amazon Review
//! and Douban datasets (substitution rationale in DESIGN.md).
//!
//! The generative model bakes in exactly the two assumptions OmniMatch is
//! built on (Fig. 1):
//!
//! 1. **Cross-domain preference consistency** — every user has a latent
//!    topic-preference vector shared across domains, plus a small
//!    per-domain jitter. A sci-fi lover loves sci-fi books *and* movies.
//! 2. **Like-mindedness** — ratings are a noisy function of the
//!    user-preference/item-topic dot product, so users who give the same
//!    item the same rating genuinely share preference structure.
//!
//! Review summaries are emitted from a topic–word model keyed to the
//! interaction's dominant topics plus a sentiment lexicon keyed to the
//! rating and a domain-flavour lexicon — so review text genuinely carries
//! the latent preference signal (what review-based methods exploit), the
//! rating signal (what the contrastive grouping of §4.3 exploits) and a
//! domain-specific component (what the shared-private split of §4.4 must
//! separate out).

use rand::seq::IndexedRandom;
use rand::{RngExt as _, SeedableRng};

use crate::domain::Domain;
use crate::split::{CrossDomainScenario, SplitConfig};
use crate::types::{Interaction, ItemId, Rating, UserId};

type StdRng = rand::rngs::StdRng;

/// Number of latent topics in the generator.
pub const N_TOPICS: usize = 8;

/// Topic keyword lexicons, one per latent dimension.
const TOPIC_WORDS: [&[&str]; N_TOPICS] = [
    &["vampire", "horror", "dark", "fangs", "creepy", "haunted", "boogeyman", "spooky", "undead", "nightmare"],
    &["romance", "love", "sweet", "heart", "passion", "tender", "wedding", "kiss", "soulmate", "longing"],
    &["scifi", "space", "future", "robot", "galaxy", "alien", "cyber", "starship", "quantum", "android"],
    &["adventure", "action", "fast", "chase", "quest", "daring", "stunt", "explosive", "thrill", "journey"],
    &["drama", "family", "life", "moving", "emotional", "touching", "tears", "bond", "struggle", "honest"],
    &["comedy", "funny", "light", "hilarious", "witty", "laugh", "silly", "charming", "quirky", "playful"],
    &["mystery", "crime", "detective", "clue", "suspense", "twist", "noir", "puzzle", "conspiracy", "secret"],
    &["history", "war", "epic", "ancient", "battle", "kingdom", "legend", "empire", "saga", "heritage"],
];

/// Sentiment lexicons indexed by rating label (1★ → index 0).
const SENTIMENT_WORDS: [&[&str]; 5] = [
    &["terrible", "awful", "waste", "boring", "worst", "disappointing", "dreadful", "unwatchable"],
    &["weak", "mediocre", "dull", "flawed", "tedious", "forgettable", "underwhelming", "lacking"],
    &["okay", "decent", "average", "fine", "passable", "reasonable", "fair", "middling"],
    &["good", "solid", "enjoyable", "engaging", "nice", "recommended", "satisfying", "strong"],
    &["amazing", "fantastic", "loved", "brilliant", "perfect", "masterpiece", "wonderful", "superb"],
];

/// Domain-flavour lexicons (domain-*specific* signal for the adversarial
/// module to detect and the shared extractor to discard).
fn domain_words(domain: &str) -> &'static [&'static str] {
    match domain {
        "Books" => &["read", "pages", "author", "chapter", "novel", "prose", "paperback", "writing"],
        "Movies" => &["watch", "screen", "film", "scenes", "director", "cast", "cinema", "picture"],
        "Music" => &["listen", "album", "songs", "sound", "vocals", "melody", "lyrics", "beat"],
        _ => &["item", "product", "quality", "value", "bought", "using", "arrived", "works"],
    }
}

/// Generator parameters. The two presets emulate the paper's corpora.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Size of the global user pool (users may appear in several domains).
    pub n_users: usize,
    /// Items per domain.
    pub n_items: usize,
    /// Min/max reviews a user writes in a domain they participate in.
    pub reviews_per_user: (usize, usize),
    /// Probability a user participates in any given domain (controls
    /// overlap size).
    pub participation: f64,
    /// Std-dev of the rating noise ε.
    pub rating_noise: f32,
    /// Std-dev of the per-domain preference jitter δ (0 = perfectly
    /// domain-invariant preferences).
    pub preference_jitter: f32,
    /// Master seed; the corpus is a pure function of the config.
    pub seed: u64,
}

impl SynthConfig {
    /// Amazon-like preset: denser interactions, milder noise — matches the
    /// regime of Table 2 where mapping baselines stay competitive.
    pub fn amazon() -> SynthConfig {
        SynthConfig {
            n_users: 320,
            n_items: 160,
            reviews_per_user: (6, 12),
            participation: 0.80,
            rating_noise: 0.65,
            preference_jitter: 0.35,
            seed: 0xA11A50,
        }
    }

    /// Douban-like preset: sparser, noisier ratings — the regime of
    /// Table 3 where MF-based mapping methods (CMF/EMCDR/PTUPCDR) collapse
    /// while review-based extraction stays robust.
    pub fn douban() -> SynthConfig {
        SynthConfig {
            n_users: 360,
            n_items: 140,
            reviews_per_user: (3, 6),
            participation: 0.52,
            rating_noise: 1.05,
            preference_jitter: 0.45,
            seed: 0xD0BA4,
        }
    }

    /// A small, fast preset for tests and the quickstart example.
    pub fn tiny() -> SynthConfig {
        SynthConfig {
            n_users: 60,
            n_items: 30,
            reviews_per_user: (3, 6),
            participation: 0.85,
            rating_noise: 0.6,
            preference_jitter: 0.3,
            seed: 42,
        }
    }
}

fn sample_normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random::<f32>().max(1e-12);
    let u2: f32 = rng.random::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

struct ItemProfile {
    topics: Vec<f32>,
    bias: f32,
}

/// A generated multi-domain world: latent user preferences plus one
/// [`Domain`] per requested domain name.
pub struct SynthWorld {
    cfg: SynthConfig,
    names: Vec<String>,
    domains: Vec<Domain>,
    /// Ground-truth user preference vectors (for diagnostics/tests).
    user_topics: Vec<Vec<f32>>,
}

impl SynthWorld {
    /// Generate domains named `names` (use `"Books"`, `"Movies"`, `"Music"`
    /// for the paper's scenarios).
    pub fn generate(cfg: SynthConfig, names: &[&str]) -> SynthWorld {
        assert!(!names.is_empty(), "need at least one domain");
        assert!(cfg.n_users >= 10, "need a non-trivial user pool");
        assert!(
            cfg.reviews_per_user.0 >= 1 && cfg.reviews_per_user.0 <= cfg.reviews_per_user.1,
            "invalid reviews_per_user range"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Global latent users (Fig. 1 assumption 1: shared preferences).
        let user_topics: Vec<Vec<f32>> = (0..cfg.n_users)
            .map(|_| (0..N_TOPICS).map(|_| sample_normal(&mut rng)).collect())
            .collect();
        let user_bias: Vec<f32> = (0..cfg.n_users)
            .map(|_| 0.3 * sample_normal(&mut rng))
            .collect();

        let mut domains = Vec::with_capacity(names.len());
        for name in names {
            let items: Vec<ItemProfile> = (0..cfg.n_items)
                .map(|_| {
                    // 1–2 dominant topics plus low-level noise elsewhere.
                    let mut topics = vec![0.0f32; N_TOPICS];
                    for t in topics.iter_mut() {
                        *t = 0.12 * sample_normal(&mut rng);
                    }
                    let dominant = 1 + (rng.random::<f32>() < 0.45) as usize;
                    for _ in 0..dominant {
                        let k = rng.random_range(0..N_TOPICS);
                        topics[k] += 0.9 + 0.2 * sample_normal(&mut rng);
                    }
                    ItemProfile {
                        topics,
                        bias: 0.25 * sample_normal(&mut rng),
                    }
                })
                .collect();

            let mut interactions = Vec::new();
            for (u, theta) in user_topics.iter().enumerate() {
                if rng.random::<f64>() >= cfg.participation {
                    continue;
                }
                // Per-domain jittered preferences (assumption 1's "some
                // degree of" consistency).
                let jittered: Vec<f32> = theta
                    .iter()
                    .map(|&t| t + cfg.preference_jitter * sample_normal(&mut rng))
                    .collect();
                let n_reviews = rng
                    .random_range(cfg.reviews_per_user.0..=cfg.reviews_per_user.1)
                    .min(cfg.n_items);
                // Users review items they *chose*: selection is biased
                // toward items matching their preferences (softmax over
                // affinity), which is what makes review text informative
                // about user taste in real corpora.
                let affinities: Vec<f32> = items
                    .iter()
                    .map(|it| {
                        jittered
                            .iter()
                            .zip(&it.topics)
                            .map(|(a, b)| a * b)
                            .sum::<f32>()
                    })
                    .collect();
                let chosen = preference_biased_sample(&affinities, n_reviews, 1.2, &mut rng);
                for &item_idx in &chosen {
                    let item = &items[item_idx];
                    let affinity: f32 = jittered
                        .iter()
                        .zip(&item.topics)
                        .map(|(a, b)| a * b)
                        .sum();
                    let score = 3.45
                        + 0.85 * affinity
                        + user_bias[u]
                        + item.bias
                        + cfg.rating_noise * sample_normal(&mut rng);
                    let rating = Rating::from_score(score);
                    let (summary, full_text) =
                        compose_review(&jittered, &item.topics, rating, name, &mut rng);
                    let mut interaction = Interaction::new(
                        UserId(u as u32),
                        ItemId(item_idx as u32),
                        rating,
                        summary,
                    );
                    interaction.full_text = full_text;
                    interactions.push(interaction);
                }
            }
            domains.push(Domain::new(*name, interactions));
        }

        SynthWorld {
            cfg,
            names: names.iter().map(|s| s.to_string()).collect(),
            domains,
            user_topics,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.cfg
    }

    /// Fetch a generated domain by name.
    pub fn domain(&self, name: &str) -> &Domain {
        let idx = self
            .names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("unknown domain {name}"));
        &self.domains[idx]
    }

    /// All generated domain names.
    pub fn domain_names(&self) -> &[String] {
        &self.names
    }

    /// Ground-truth preference vector of a user (diagnostics/tests only —
    /// models never see this).
    pub fn true_preferences(&self, user: UserId) -> &[f32] {
        &self.user_topics[user.0 as usize]
    }

    /// Convenience: build the cross-domain scenario `source -> target`.
    pub fn scenario(&self, source: &str, target: &str, split: SplitConfig) -> CrossDomainScenario {
        CrossDomainScenario::build(self.domain(source), self.domain(target), split)
    }
}

// ------------------------------------------------------------------------
// Large-catalogue presets: serving-scale synthetic feature arenas.
//
// The review-level generator above is O(users × items) per user — right
// for corpora the model *trains* on, hopeless for the million-user
// catalogues the serving layer ranks. These presets instead emit the
// post-tower representation directly: deterministic pseudo-random feature
// rows from a counter-mode hash (splitmix64 finalizer), O(1) per element
// with no sequential RNG state, so row `i` of a preset is the same bit
// pattern regardless of how many rows are generated, in what order, or on
// which thread. `om-serve` wraps the rows in its arenas and scores them
// through the real (trained) rating head — garbage semantically, but the
// exact compute shape and bit-determinism of production serving, which is
// all a load harness needs.

/// A serving-scale synthetic arena preset: how many users/items to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaPreset {
    /// Preset name (`load_bench --preset <name>`).
    pub name: &'static str,
    /// Number of synthetic (warm) users.
    pub users: usize,
    /// Catalogue size being ranked per request.
    pub items: usize,
    /// Master seed for the feature PRF.
    pub seed: u64,
}

impl ArenaPreset {
    /// CI-sized preset: big enough that top-K sharding and the item-shard
    /// loop are exercised, small enough for a smoke job.
    pub fn small() -> ArenaPreset {
        ArenaPreset { name: "small", users: 20_000, items: 2_000, seed: 0x10AD_0001 }
    }

    /// The north-star preset: one million users against a 16Ki-item
    /// catalogue.
    pub fn million() -> ArenaPreset {
        ArenaPreset { name: "million", users: 1_000_000, items: 16_384, seed: 0x10AD_0002 }
    }

    /// Look a preset up by its CLI name.
    pub fn by_name(name: &str) -> Option<ArenaPreset> {
        match name {
            "small" => Some(ArenaPreset::small()),
            "million" => Some(ArenaPreset::million()),
            _ => None,
        }
    }

    /// User feature rows, `[users, dim]` row-major.
    pub fn user_rows(&self, dim: usize) -> Vec<f32> {
        synth_feature_rows(self.users, dim, self.seed ^ 0x5EED_0000_0000_0001)
    }

    /// Item feature rows, `[items, dim]` row-major.
    pub fn item_rows(&self, dim: usize) -> Vec<f32> {
        synth_feature_rows(self.items, dim, self.seed ^ 0x5EED_0000_0000_0002)
    }

    /// Dense user ids `0..users`.
    pub fn user_ids(&self) -> Vec<UserId> {
        assert!(self.users <= u32::MAX as usize, "user id space is u32");
        (0..self.users as u32).map(UserId).collect()
    }

    /// Dense item ids `0..items`.
    pub fn item_ids(&self) -> Vec<ItemId> {
        assert!(self.items <= u32::MAX as usize, "item id space is u32");
        (0..self.items as u32).map(ItemId).collect()
    }
}

/// splitmix64 finalizer: the per-element bijective mixer behind the
/// counter-mode feature PRF.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic `[n, dim]` row-major feature rows in `[-1, 1)`. Pure
/// counter-mode: element `(r, c)` is a function of `(seed, r, c)` alone,
/// so any sub-range regenerates bit-identically.
pub fn synth_feature_rows(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    assert!(dim > 0, "zero-width feature rows");
    let mut data = Vec::with_capacity(n * dim);
    for r in 0..n as u64 {
        let row_key = mix64(seed ^ r.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for c in 0..dim as u64 {
            let h = mix64(row_key ^ c.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
            // Top 24 bits → [0, 1) at f32 precision → [-1, 1).
            let unit = (h >> 40) as f32 / (1u64 << 24) as f32;
            data.push(unit * 2.0 - 1.0);
        }
    }
    data
}

/// Sample `k` distinct indices with probability ∝ exp(affinity / T):
/// preference-biased selection without replacement (Gumbel top-k).
fn preference_biased_sample(
    affinities: &[f32],
    k: usize,
    temperature: f32,
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut keyed: Vec<(usize, f32)> = affinities
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let u: f32 = rng.random::<f32>().max(1e-12);
            let gumbel = -(-u.ln()).ln();
            (i, a / temperature + gumbel)
        })
        .collect();
    keyed.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("no NaNs"));
    keyed.truncate(k);
    keyed.into_iter().map(|(i, _)| i).collect()
}

/// Compose the (summary, full_text) pair for one interaction.
fn compose_review(
    user_topics: &[f32],
    item_topics: &[f32],
    rating: Rating,
    domain: &str,
    rng: &mut StdRng,
) -> (String, String) {
    // Rank topics by the user×item contribution that produced the rating.
    let mut contrib: Vec<(usize, f32)> = user_topics
        .iter()
        .zip(item_topics)
        .map(|(u, i)| u * i)
        .enumerate()
        .collect();
    contrib.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());

    let mut words: Vec<&str> = Vec::new();
    for &(topic, _) in contrib.iter().take(2) {
        let lex = TOPIC_WORDS[topic];
        words.push(lex.choose(rng).expect("non-empty lexicon"));
        if rng.random::<f32>() < 0.5 {
            words.push(lex.choose(rng).expect("non-empty lexicon"));
        }
    }
    let senti = SENTIMENT_WORDS[rating.label()];
    words.push(senti.choose(rng).expect("non-empty lexicon"));
    if rng.random::<f32>() < 0.4 {
        words.push(senti.choose(rng).expect("non-empty lexicon"));
    }
    words.push(domain_words(domain).choose(rng).expect("non-empty lexicon"));
    let summary = words.join(" ");

    // Full text: the summary plus extra topic/sentiment/domain filler —
    // longer and more diluted, which is exactly why the paper found
    // summaries work better (§5.7).
    let mut full = words.clone();
    for _ in 0..rng.random_range(8..20) {
        let roll: f32 = rng.random();
        let w = if roll < 0.4 {
            let &(topic, _) = contrib.choose(rng).expect("non-empty");
            TOPIC_WORDS[topic].choose(rng).expect("non-empty")
        } else if roll < 0.7 {
            senti.choose(rng).expect("non-empty")
        } else {
            domain_words(domain).choose(rng).expect("non-empty")
        };
        full.push(w);
    }
    (summary, full.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        let b = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        assert_eq!(a.domain("Books").len(), b.domain("Books").len());
        let ia = &a.domain("Books").interactions()[0];
        let ib = &b.domain("Books").interactions()[0];
        assert_eq!(ia.summary, ib.summary);
        assert_eq!(ia.rating, ib.rating);
    }

    #[test]
    fn domains_share_users() {
        let w = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        let overlap = w.domain("Books").overlapping_users(w.domain("Movies"));
        assert!(
            overlap.len() > 20,
            "expected substantial overlap, got {}",
            overlap.len()
        );
    }

    #[test]
    fn ratings_span_the_scale_and_skew_positive() {
        let w = SynthWorld::generate(SynthConfig::amazon(), &["Books"]);
        let mut counts = [0usize; 5];
        for it in w.domain("Books").interactions() {
            counts[it.rating.label()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "all classes used: {counts:?}");
        // e-commerce corpora skew positive
        assert!(counts[3] + counts[4] > counts[0] + counts[1], "{counts:?}");
    }

    #[test]
    fn summaries_are_short_and_full_texts_longer() {
        let w = SynthWorld::generate(SynthConfig::tiny(), &["Books"]);
        for it in w.domain("Books").interactions().iter().take(50) {
            let s_len = it.summary.split_whitespace().count();
            let f_len = it.full_text.split_whitespace().count();
            assert!((2..=8).contains(&s_len), "summary len {s_len}");
            assert!(f_len > s_len, "full text must be longer");
        }
    }

    #[test]
    fn sentiment_words_track_rating() {
        // 5★ summaries must draw sentiment from the 5★ lexicon.
        let w = SynthWorld::generate(SynthConfig::tiny(), &["Movies"]);
        let five: Vec<_> = w
            .domain("Movies")
            .interactions()
            .iter()
            .filter(|i| i.rating.stars() == 5)
            .take(20)
            .collect();
        assert!(!five.is_empty());
        for it in five {
            let has_pos = it
                .summary
                .split_whitespace()
                .any(|tok| SENTIMENT_WORDS[4].contains(&tok));
            assert!(has_pos, "5★ summary lacks positive sentiment: {}", it.summary);
        }
    }

    #[test]
    fn domain_flavour_words_present() {
        let w = SynthWorld::generate(SynthConfig::tiny(), &["Books"]);
        let any_flavour = w
            .domain("Books")
            .interactions()
            .iter()
            .take(30)
            .any(|it| {
                it.summary
                    .split_whitespace()
                    .any(|tok| domain_words("Books").contains(&tok))
            });
        assert!(any_flavour);
    }

    #[test]
    fn preference_consistency_across_domains() {
        // Users' mean rating deviation must correlate across domains more
        // than across different users (the cross-domain signal exists).
        let w = SynthWorld::generate(SynthConfig::amazon(), &["Books", "Movies"]);
        let books = w.domain("Books");
        let movies = w.domain("Movies");
        let overlap = books.overlapping_users(movies);
        let mean = |d: &Domain, u: UserId| -> f32 {
            let (s, n) = d
                .user_records(u)
                .fold((0.0f32, 0usize), |(s, n), it| (s + it.rating.value(), n + 1));
            s / n as f32
        };
        let xs: Vec<f32> = overlap.iter().map(|&u| mean(books, u)).collect();
        let ys: Vec<f32> = overlap.iter().map(|&u| mean(movies, u)).collect();
        let mx = xs.iter().sum::<f32>() / xs.len() as f32;
        let my = ys.iter().sum::<f32>() / ys.len() as f32;
        let cov: f32 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f32 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f32 = ys.iter().map(|y| (y - my).powi(2)).sum();
        let corr = cov / (vx.sqrt() * vy.sqrt());
        assert!(corr > 0.2, "cross-domain rating correlation too weak: {corr}");
    }

    #[test]
    fn scenario_convenience_builds() {
        let w = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        let sc = w.scenario("Books", "Movies", SplitConfig::default());
        assert!(sc.train_users.len() > sc.test_users.len());
    }

    #[test]
    #[should_panic(expected = "unknown domain")]
    fn unknown_domain_panics() {
        let w = SynthWorld::generate(SynthConfig::tiny(), &["Books"]);
        let _ = w.domain("Movies");
    }

    #[test]
    fn feature_rows_are_counter_mode() {
        // Same (seed, row, col) → same bits, regardless of how many rows
        // were asked for — the property that lets the load harness and the
        // front-end factory regenerate arenas independently.
        let a = synth_feature_rows(10, 6, 7);
        let b = synth_feature_rows(4, 6, 7);
        assert_eq!(a[..4 * 6], b[..], "prefix must regenerate bit-identically");
        let c = synth_feature_rows(10, 6, 8);
        assert_ne!(a, c, "different seeds must differ");
        for v in &a {
            assert!((-1.0..1.0).contains(v), "out of range: {v}");
            assert!(v.is_finite());
        }
    }

    #[test]
    fn arena_presets_resolve_by_name() {
        assert_eq!(ArenaPreset::by_name("small"), Some(ArenaPreset::small()));
        assert_eq!(ArenaPreset::by_name("million"), Some(ArenaPreset::million()));
        assert_eq!(ArenaPreset::by_name("huge"), None);
        let p = ArenaPreset::small();
        assert_eq!(p.user_ids().len(), p.users);
        assert_eq!(p.item_rows(12).len(), p.items * 12);
        assert_eq!(ArenaPreset::million().users, 1_000_000);
    }
}
