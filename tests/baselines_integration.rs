//! Integration of the comparator systems with the shared data pipeline:
//! every baseline trains on exactly the training-visible data and produces
//! valid cold-start predictions.

use omnimatch::baselines::{Recommender, CMF, EMCDR, HeroGraph, LightGCN, NGCF, PTUPCDR, TMCDR};
use omnimatch::data::{SplitConfig, SynthConfig, SynthWorld};

fn scenario() -> omnimatch::data::CrossDomainScenario {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    world.scenario("Books", "Movies", SplitConfig::default())
}

fn all_models(sc: &omnimatch::data::CrossDomainScenario) -> Vec<Box<dyn Recommender>> {
    vec![
        Box::new(NGCF::fit(sc, 1)),
        Box::new(LightGCN::fit(sc, 1)),
        Box::new(CMF::fit(sc, 1)),
        Box::new(EMCDR::fit(sc, 1)),
        Box::new(PTUPCDR::fit(sc, 1)),
        Box::new(HeroGraph::fit(sc, 1)),
        Box::new(TMCDR::fit(sc, 1)),
    ]
}

#[test]
fn every_baseline_predicts_in_star_range() {
    let sc = scenario();
    let models = all_models(&sc);
    for m in &models {
        for it in sc.test_pairs().iter().take(10) {
            let p = m.predict(it.user, it.item);
            assert!(
                (1.0..=5.0).contains(&p),
                "{} predicted {p} for {}/{}",
                m.name(),
                it.user,
                it.item
            );
        }
    }
}

#[test]
fn every_baseline_evaluates_finite() {
    let sc = scenario();
    for m in &all_models(&sc) {
        let e = m.evaluate(&sc.test_pairs());
        assert!(
            e.rmse.is_finite() && e.mae.is_finite(),
            "{} produced non-finite metrics",
            m.name()
        );
        assert!(e.mae <= e.rmse + 1e-6, "{}: MAE > RMSE", m.name());
    }
}

#[test]
fn method_names_are_unique() {
    let sc = scenario();
    let models = all_models(&sc);
    let mut names: Vec<&str> = models.iter().map(|m| m.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 7);
}

#[test]
fn cross_domain_methods_personalise_cold_users() {
    // EMCDR, PTUPCDR and HeroGraph see source data, so two cold users must
    // generally receive different predictions for the same item — while
    // single-domain NGCF/LightGCN cannot distinguish them.
    let sc = scenario();
    let item = sc.target_train.items().next().unwrap();
    let u1 = sc.test_users[0];
    let u2 = *sc.test_users.last().unwrap();

    let single: Vec<Box<dyn Recommender>> =
        vec![Box::new(NGCF::fit(&sc, 2)), Box::new(LightGCN::fit(&sc, 2))];
    for m in &single {
        assert_eq!(
            m.predict(u1, item),
            m.predict(u2, item),
            "{} should be blind to cold-user identity",
            m.name()
        );
    }

    let cross: Vec<Box<dyn Recommender>> = vec![
        Box::new(EMCDR::fit(&sc, 2)),
        Box::new(PTUPCDR::fit(&sc, 2)),
        Box::new(HeroGraph::fit(&sc, 2)),
    ];
    for m in &cross {
        assert_ne!(
            m.predict(u1, item),
            m.predict(u2, item),
            "{} should personalise cold users",
            m.name()
        );
    }
}

#[test]
fn paired_significance_over_trial_series() {
    // Drive the stats module with real trial data: two deterministic
    // baselines across three seeds.
    use omnimatch::metrics::paired_t;
    let world = omnimatch::data::SynthWorld::generate(
        omnimatch::data::SynthConfig::tiny(),
        &["Books", "Movies"],
    );
    let mut cmf = Vec::new();
    let mut emcdr = Vec::new();
    for seed in [100u64, 101, 102] {
        let sc = world.scenario(
            "Books",
            "Movies",
            omnimatch::data::SplitConfig {
                seed,
                ..omnimatch::data::SplitConfig::default()
            },
        );
        cmf.push(CMF::fit(&sc, seed).evaluate(&sc.test_pairs()).rmse);
        emcdr.push(EMCDR::fit(&sc, seed).evaluate(&sc.test_pairs()).rmse);
    }
    let cmp = paired_t(&emcdr, &cmf);
    // EMCDR should be consistently better than bias-free CMF
    assert!(cmp.mean_diff < 0.0, "{cmp:?}");
}

#[test]
fn experiment_runner_executes_a_baseline_cell() {
    use omnimatch::data::{SynthConfig, SynthWorld};
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let r = om_experiments::run_trials(
        &world,
        "Books",
        "Movies",
        &om_experiments::Method::Cmf,
        2,
        1.0,
    );
    assert_eq!(r.rmse.n, 2);
    assert!(r.train_seconds >= 0.0);
}
