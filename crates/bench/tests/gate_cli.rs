//! CLI regression tests for `bench_gate`, run against the real binary
//! (`CARGO_BIN_EXE_bench_gate`) over synthetic baseline/current trees.
//!
//! Pins the two failure modes the gate exists to catch at the edges:
//!
//! * a filter that matches **zero benches** must be a hard error naming
//!   the filter, never a vacuous OK (the `--only` empty-match bug);
//! * an improvement beyond `--improve-factor` must FAIL as a stale
//!   baseline, so optimisations are forced to re-ratchet `bench/baselines/`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("om-gate-cli-{}-{tag}", std::process::id()));
    // Recreate fresh so reruns don't see stale reports.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("bl")).expect("create baseline dir");
    std::fs::create_dir_all(dir.join("cur")).expect("create current dir");
    dir
}

fn write_report(dir: &Path, file: &str, benches: &[(&str, f64)]) {
    let rows: Vec<String> = benches
        .iter()
        .map(|(name, med)| format!("{{\"name\":\"{name}\",\"median_ms\":{med}}}"))
        .collect();
    let doc = format!("{{\"benches\":[{}]}}", rows.join(","));
    std::fs::write(dir.join(file), doc).expect("write report");
}

fn run_gate(dir: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .arg("--baseline")
        .arg(dir.join("bl"))
        .arg("--current")
        .arg(dir.join("cur"))
        .args(extra)
        .output()
        .expect("run bench_gate")
}

#[test]
fn matching_reports_within_tolerance_pass() {
    let dir = tmp_dir("ok");
    write_report(&dir.join("bl"), "BENCH_x.json", &[("a", 10.0), ("b", 5.0)]);
    write_report(&dir.join("cur"), "BENCH_x.json", &[("a", 10.5), ("b", 4.8)]);
    let out = run_gate(&dir, &[]);
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn regression_beyond_fail_factor_fails() {
    let dir = tmp_dir("fail");
    write_report(&dir.join("bl"), "BENCH_x.json", &[("a", 10.0)]);
    write_report(&dir.join("cur"), "BENCH_x.json", &[("a", 14.0)]);
    let out = run_gate(&dir, &[]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "stdout: {stdout}");
}

#[test]
fn only_filter_matching_zero_benches_is_a_hard_error_naming_the_filter() {
    let dir = tmp_dir("empty-only");
    // The named baseline exists but gates nothing: its benches array is
    // empty. Before the fix this passed vacuously with "0 benches".
    write_report(&dir.join("bl"), "BENCH_empty.json", &[]);
    write_report(&dir.join("bl"), "BENCH_real.json", &[("a", 1.0)]);
    write_report(&dir.join("cur"), "BENCH_empty.json", &[]);
    write_report(&dir.join("cur"), "BENCH_real.json", &[("a", 1.0)]);
    let out = run_gate(&dir, &["--only", "BENCH_empty.json"]);
    assert!(!out.status.success(), "vacuous gate must not pass");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("BENCH_empty.json") && stderr.contains("matched no benches"),
        "error must name the filter; stderr: {stderr}"
    );
}

#[test]
fn only_filter_naming_a_missing_baseline_is_an_error() {
    let dir = tmp_dir("missing-only");
    write_report(&dir.join("bl"), "BENCH_real.json", &[("a", 1.0)]);
    write_report(&dir.join("cur"), "BENCH_real.json", &[("a", 1.0)]);
    let out = run_gate(&dir, &["--only", "BENCH_typo.json"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("BENCH_typo.json"), "stderr: {stderr}");
}

#[test]
fn improvement_beyond_improve_factor_fails_as_stale_baseline() {
    let dir = tmp_dir("stale");
    write_report(&dir.join("bl"), "BENCH_x.json", &[("a", 10.0)]);
    // 3.3× faster than baseline — an unratcheted optimisation.
    write_report(&dir.join("cur"), "BENCH_x.json", &[("a", 3.0)]);
    let out = run_gate(&dir, &[]);
    assert!(!out.status.success(), "stale baseline must fail the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("STALE"), "stdout: {stdout}");
    assert!(stdout.contains("re-ratchet"), "stdout: {stdout}");

    // A re-ratcheted baseline (or a loosened factor) passes again.
    let out = run_gate(&dir, &["--improve-factor", "0.1"]);
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn modest_improvements_still_pass_as_faster() {
    let dir = tmp_dir("faster");
    write_report(&dir.join("bl"), "BENCH_x.json", &[("a", 10.0)]);
    write_report(&dir.join("cur"), "BENCH_x.json", &[("a", 8.0)]); // 0.80×
    let out = run_gate(&dir, &[]);
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FASTER"), "stdout: {stdout}");
}
