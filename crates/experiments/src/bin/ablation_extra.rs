//! Extra ablations for *this reproduction's* documented design decisions
//! (DESIGN.md "Implementation decisions"): the aux-consistency
//! augmentation probability, the cold-user alignment losses, and the
//! subword-hash embedding warm start. These are not in the paper — they
//! quantify the choices the reproduction had to make.

use om_data::{SynthConfig, SynthWorld};
use om_experiments::report::Table;
use om_experiments::runner::{cli_trials, run_trials, Method};
use omnimatch_core::OmniMatchConfig;

fn main() {
    let _run = om_obs::run_scope("ablation_extra");
    let trials = cli_trials(2);
    om_obs::manifest_set("experiment.trials", (trials as u64).into());
    om_obs::info!("generating world ({trials} trial(s) per cell)…");
    let world = SynthWorld::generate(SynthConfig::amazon(), &["Books", "Movies"]);

    let variants: Vec<(&str, OmniMatchConfig)> = vec![
        ("full (defaults)", OmniMatchConfig::default()),
        (
            "aux_augment = 0.0",
            OmniMatchConfig {
                aux_augment_prob: 0.0,
                ..OmniMatchConfig::default()
            },
        ),
        (
            "aux_augment = 1.0",
            OmniMatchConfig {
                aux_augment_prob: 1.0,
                ..OmniMatchConfig::default()
            },
        ),
        (
            "no cold-user alignment",
            OmniMatchConfig {
                align_cold_users: false,
                ..OmniMatchConfig::default()
            },
        ),
        (
            "random embedding init",
            OmniMatchConfig {
                pretrain_embeddings: false,
                ..OmniMatchConfig::default()
            },
        ),
    ];

    let mut table = Table::new(
        "Reproduction-specific ablations (Books -> Movies, Amazon preset)",
        &["Variant", "RMSE", "MAE"],
    );
    for (name, cfg) in variants {
        om_obs::info!("{name}…");
        let r = run_trials(&world, "Books", "Movies", &Method::Ours(cfg), trials, 1.0);
        table.row(vec![
            name.to_string(),
            format!("{:.3} ±{:.3}", r.rmse.mean, r.rmse.std),
            format!("{:.3} ±{:.3}", r.mae.mean, r.mae.std),
        ]);
    }
    println!("{}", table.render());
    table.write_tsv("ablation_extra.tsv").expect("write results TSV");
    println!("TSV written to results/ablation_extra.tsv");
}
