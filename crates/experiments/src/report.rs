//! Table rendering (paper layout: best bold, second-best underlined —
//! rendered as `*value*` and `_value_` in a terminal) and TSV artifacts.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use om_metrics::best_and_second;

/// A simple column-aligned table accumulated row by row.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Write the raw cells as TSV under `results/` (created on demand).
    pub fn write_tsv(&self, filename: &str) -> std::io::Result<()> {
        write_tsv(filename, &self.header, &self.rows)
    }
}

/// Write a header + rows as a TSV file under `results/`.
pub fn write_tsv(
    filename: &str,
    header: &[String],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let mut out = String::new();
    out.push_str(&header.join("\t"));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    fs::write(dir.join(filename), out)
}

/// Format a measured-vs-paper metric pair: `measured (paper p)`.
pub fn vs_paper(measured: f32, paper: f32) -> String {
    format!("{measured:.3} (p {paper:.3})")
}

/// Mark the best value with `*…*` and the runner-up with `_…_` across a
/// row of error metrics, as the paper does with bold/underline.
///
/// A NaN value is a missing cell (every trial of that method failed); it
/// renders as `n/a` and is never marked best or second-best.
pub fn mark_best(values: &[f32]) -> Vec<String> {
    let (best, second) = best_and_second(values);
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if v.is_nan() {
                "n/a".to_string()
            } else if i == best {
                format!("*{v:.3}*")
            } else if i == second {
                format!("_{v:.3}_")
            } else {
                format!("{v:.3}")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "metric"]);
        t.row(vec!["x".into(), "1.0".into()]);
        t.row(vec!["longer".into(), "2.0".into()]);
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("longer"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn mark_best_formats() {
        let marked = mark_best(&[1.5, 1.0, 1.2]);
        assert_eq!(marked, vec!["1.500", "*1.000*", "_1.200_"]);
    }

    #[test]
    fn mark_best_skips_missing_cells() {
        let marked = mark_best(&[f32::NAN, 1.0, 1.2]);
        assert_eq!(marked, vec!["n/a", "*1.000*", "_1.200_"]);
        // Even an all-missing row renders without panicking or marking.
        assert_eq!(mark_best(&[f32::NAN, f32::NAN]), vec!["n/a", "n/a"]);
    }

    #[test]
    fn vs_paper_format() {
        assert_eq!(vs_paper(1.0315, 1.031), "1.031 (p 1.031)");
    }
}
