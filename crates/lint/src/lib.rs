//! # om-lint
//!
//! Repo-invariant linter and concurrency model checker for the OmniMatch
//! workspace. Run it as `cargo lint` (alias for `cargo run -p om-lint`),
//! or in CI, where it is a required job.
//!
//! Token-level passes over every first-party `.rs` file plus one
//! manifest pass (see [`passes`]):
//!
//! | rule | guarantee |
//! |---|---|
//! | `unsafe-confinement` | `unsafe` only in `crates/tensor/src/runtime.rs` |
//! | `safety-comment` | every runtime `unsafe` sits under `// SAFETY:` |
//! | `hash-collections` | no `HashMap`/`HashSet` in model-path crates |
//! | `thread-spawn` | threads spawned only by the runtime (or marked) |
//! | `print` | no raw `println!`/`eprintln!` in tensor/nn/core/metrics — use om-obs |
//! | `kill-point-marker` | every `kill_point` site outside `crates/obs/` carries `// om-fault: kill-point` |
//! | `kernel-parity` | every kernel has a `_serial` twin in the parity suite |
//! | `workspace-lints` | all crates opt into `[workspace.lints.rust]` |
//!
//! Semantic passes over the [`ast`] item tree (see [`semantic`] and
//! [`env_registry`] for policies and escape markers):
//!
//! | rule | guarantee |
//! |---|---|
//! | `determinism` | no wall-clock time / OS randomness in model-path + serving crates |
//! | `panic-freedom` | no `unwrap`/`expect`/panicking macros/indexing in the serving hot path |
//! | `float-reduction` | no ad-hoc float reductions outside the kernel suite |
//! | `simd-ulp-tolerance` | `// om-lint: simd` kernels register a ULP tolerance in parity.rs |
//! | `env-registry` | every `OM_*` literal is declared; every declaration is used |
//! | `metric-registry` | every `serve.*`/`train.*`/`load.*` metric name is declared; every declaration is emitted |
//!
//! The companion [`interleave`] module is the explicit-state model checker
//! used by `tests/pool_model.rs` (worker-pool latch protocol) and
//! `tests/frontend_model.rs` (bounded-queue shutdown protocol) to verify
//! every interleaving.

pub mod ast;
pub mod env_registry;
pub mod interleave;
pub mod lexer;
pub mod metric_registry;
pub mod passes;
pub mod semantic;

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

pub use passes::Violation;
pub use semantic::Policy;

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// Outcome of linting a whole repository.
#[derive(Debug)]
pub struct LintReport {
    /// Number of `.rs` files checked.
    pub files: usize,
    /// All findings, sorted by file then line.
    pub violations: Vec<Violation>,
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                rs_files(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint the workspace rooted at `root`.
pub fn lint_repo(root: &Path) -> LintReport {
    let mut files = Vec::new();
    rs_files(root, &mut files);

    let policy = Policy::default_policy();
    let mut violations = Vec::new();
    let mut kernels: Option<(String, lexer::LexedFile)> = None;
    let mut parity: Option<lexer::LexedFile> = None;
    let mut env_used: BTreeSet<String> = BTreeSet::new();
    let mut metric_used: BTreeSet<String> = BTreeSet::new();

    for path in &files {
        let rel = rel_of(root, path);
        let Ok(src) = fs::read_to_string(path) else {
            continue;
        };
        let lexed = lexer::lex(&src);
        violations.extend(passes::check_unsafe(&rel, &lexed));
        violations.extend(passes::check_hash_collections(&rel, &lexed));
        violations.extend(passes::check_thread_spawn(&rel, &lexed));
        violations.extend(passes::check_print(&rel, &lexed));
        violations.extend(passes::check_kill_points(&rel, &lexed));
        let parsed = ast::parse(&lexed);
        violations.extend(semantic::check_determinism(&rel, &lexed, &parsed, &policy));
        violations.extend(semantic::check_panic_freedom(&rel, &lexed, &parsed, &policy));
        violations.extend(semantic::check_float_reduction(&rel, &lexed, &parsed, &policy));
        violations.extend(env_registry::scan_file(&rel, &lexed, &mut env_used));
        violations.extend(metric_registry::scan_file(&rel, &lexed, &mut metric_used));
        if rel == "crates/tensor/src/kernels.rs" {
            kernels = Some((rel, lexed));
        } else if rel == "crates/tensor/tests/parity.rs" {
            parity = Some(lexed);
        }
    }

    violations.extend(env_registry::check_stale(&env_used));
    violations.extend(metric_registry::check_stale(&metric_used));

    match (&kernels, &parity) {
        (Some((rel, k)), Some(p)) => {
            violations.extend(passes::check_kernel_parity(rel, k, p));
            violations.extend(semantic::check_simd_tolerance(rel, k, p));
        }
        _ => violations.push(Violation {
            file: "crates/tensor".to_string(),
            line: 1,
            rule: "kernel-parity",
            msg: "kernels.rs or tests/parity.rs missing — cannot verify kernel parity"
                .to_string(),
        }),
    }

    let root_manifest = fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    let mut crate_manifests = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = fs::read_to_string(&manifest) {
                crate_manifests.push((rel_of(root, &manifest), text));
            }
        }
    }
    violations.extend(passes::check_workspace_lints(&root_manifest, &crate_manifests));

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    LintReport {
        files: files.len(),
        violations,
    }
}
