//! Checkpoint loading: rebuild an [`OmniMatchModel`] from an OMCK v2 file.
//!
//! Serving only needs the `params` section. Both checkpoint flavours the
//! trainer produces carry one — the durable epoch files written by
//! `omnimatch_core::ckpt` (`ep-NNNN.omck`, which add optimizer/RNG state)
//! and the minimal export of
//! [`TrainedOmniMatch::export_checkpoint`](omnimatch_core::TrainedOmniMatch::export_checkpoint)
//! — so either feeds this loader unchanged. Decoding is strict: every
//! section and every tensor is CRC-checked by `om_nn::serialize`, and a
//! shape mismatch (config drift between training and serving) is an
//! error, never a silent truncation.

use om_nn::serialize::{decode_tensors_into, CheckpointError, CheckpointV2};
use om_nn::HasParams;
use om_tensor::seeded_rng;
use omnimatch_core::{OmniMatchConfig, OmniMatchModel};

/// Rebuild a model with `cfg`/`vocab_size` and overwrite every parameter
/// from the checkpoint's `params` section. The config and vocabulary must
/// match the training run (the parameter count and shapes are verified
/// tensor by tensor).
pub fn load_model(
    cfg: &OmniMatchConfig,
    vocab_size: usize,
    bytes: &[u8],
) -> Result<OmniMatchModel, CheckpointError> {
    let v2 = CheckpointV2::decode(bytes)?;
    // The freshly initialised parameters are fully overwritten below; the
    // seed only feeds the soon-discarded random init.
    let mut rng = seeded_rng(0);
    let model = OmniMatchModel::new(cfg, vocab_size, None, &mut rng);
    decode_tensors_into(&model.params(), v2.require("params")?)?;
    Ok(model)
}

/// [`load_model`] from a file path; IO and decode errors become strings.
pub fn load_model_file(
    cfg: &OmniMatchConfig,
    vocab_size: usize,
    path: &std::path::Path,
) -> Result<OmniMatchModel, String> {
    let bytes = std::fs::read(path)
        .map_err(|e| format!("read checkpoint {}: {e}", path.display()))?;
    load_model(cfg, vocab_size, &bytes)
        .map_err(|e| format!("decode checkpoint {}: {e:?}", path.display()))
}
