//! EMCDR — Embedding and Mapping for Cross-Domain Recommendation
//! (Man et al. 2017): factorise each domain separately, then learn an MLP
//! mapping source-user factors to target-user factors from the overlapping
//! users. Cold-start users are served by mapping their source factor into
//! the target space. The three-stage pipeline is what makes EMCDR
//! sensitive to the number of overlapping training users (Table 4).

use om_data::split::CrossDomainScenario;
use om_data::types::{Interaction, ItemId, UserId};
use om_nn::{mse_loss, Adam, HasParams, Mlp, Optimizer as _};
use om_tensor::{seeded_rng, Tensor};

use crate::mf::{MatrixFactorization, MfConfig};
use crate::{clamp_stars, Recommender};

/// Trained EMCDR model.
pub struct EMCDR {
    mf_source: MatrixFactorization,
    mf_target: MatrixFactorization,
    mapping: Mlp,
    seed: u64,
}

impl EMCDR {
    /// Three-stage fit: source MF → target MF → mapping MLP on overlap.
    pub fn fit(scenario: &CrossDomainScenario, seed: u64) -> EMCDR {
        let mut rng = seeded_rng(seed);
        let src_refs: Vec<&Interaction> = scenario.source.interactions().iter().collect();
        let tgt_refs: Vec<&Interaction> = scenario.target_train.interactions().iter().collect();
        let mf_source = MatrixFactorization::fit(&src_refs, MfConfig::default(), &mut rng);
        let mf_target = MatrixFactorization::fit(&tgt_refs, MfConfig::default(), &mut rng);

        // Mapping training set: overlapping users with factors in both.
        let dim = mf_source.dim();
        let mut xs: Vec<f32> = Vec::new();
        let mut ys: Vec<f32> = Vec::new();
        let mut n = 0usize;
        for &u in &scenario.train_users {
            if let (Some(s), Some(t)) = (mf_source.user_factor(u), mf_target.user_factor(u)) {
                xs.extend_from_slice(s);
                ys.extend_from_slice(t);
                n += 1;
            }
        }
        let mapping = Mlp::new(&[dim, dim * 2, dim], 0.0, &mut rng);
        if n >= 2 {
            let x = Tensor::from_vec(xs, &[n, dim]);
            let mut opt = Adam::new(mapping.params(), 0.01);
            for _ in 0..300 {
                let pred = mapping.forward(&x, true, &mut rng);
                let loss = mse_loss(&pred, &ys);
                loss.backward();
                opt.step();
                opt.zero_grad();
            }
        }
        EMCDR {
            mf_source,
            mf_target,
            mapping,
            seed,
        }
    }

    /// Map a user's source factor into the target space (None when the
    /// user has no source history).
    pub fn mapped_factor(&self, user: UserId) -> Option<Vec<f32>> {
        let s = self.mf_source.user_factor(user)?;
        let x = Tensor::from_vec(s.to_vec(), &[1, s.len()]);
        let _guard = om_tensor::no_grad();
        let mut rng = seeded_rng(self.seed);
        Some(self.mapping.forward(&x, false, &mut rng).to_vec())
    }
}

impl Recommender for EMCDR {
    fn name(&self) -> &'static str {
        "EMCDR"
    }

    fn predict(&self, user: UserId, item: ItemId) -> f32 {
        // Known target users predict natively; cold users via the mapping.
        let raw = if self.mf_target.user_factor(user).is_some() {
            self.mf_target.raw_predict(user, item)
        } else {
            match self.mapped_factor(user) {
                Some(f) => self.mf_target.predict_with_user_factor(&f, item),
                None => self.mf_target.predict_with_user_factor(
                    &vec![0.0; self.mf_target.dim()],
                    item,
                ),
            }
        };
        clamp_stars(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{SplitConfig, SynthConfig, SynthWorld};

    fn scenario() -> CrossDomainScenario {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        world.scenario("Books", "Movies", SplitConfig::default())
    }

    #[test]
    fn cold_users_get_mapped_factors() {
        let sc = scenario();
        let m = EMCDR::fit(&sc, 1);
        for &u in sc.test_users.iter().take(5) {
            assert!(m.mapped_factor(u).is_some(), "{u} should have a source factor");
        }
    }

    #[test]
    fn evaluation_is_finite_and_beats_worst_case() {
        let sc = scenario();
        let m = EMCDR::fit(&sc, 1);
        let e = m.evaluate(&sc.test_pairs());
        assert!(e.rmse.is_finite() && e.rmse < 3.0, "{e:?}");
    }

    #[test]
    fn mapping_personalises_cold_predictions() {
        // Unlike single-domain baselines, two cold users generally get
        // different predictions for the same item.
        let sc = scenario();
        let m = EMCDR::fit(&sc, 3);
        let item = sc.target_train.items().next().unwrap();
        let preds: Vec<f32> = sc
            .test_users
            .iter()
            .map(|&u| m.predict(u, item))
            .collect();
        let distinct = preds
            .windows(2)
            .any(|w| (w[0] - w[1]).abs() > 1e-4);
        assert!(distinct, "cold predictions all identical: {preds:?}");
    }

    #[test]
    fn deterministic() {
        let sc = scenario();
        let a = EMCDR::fit(&sc, 7);
        let b = EMCDR::fit(&sc, 7);
        let it = sc.test_pairs()[0];
        assert_eq!(a.predict(it.user, it.item), b.predict(it.user, it.item));
    }
}
