//! The lint passes. Each pass takes a workspace-relative path (with `/`
//! separators) plus the lexed file and returns violations; [`crate::lint_repo`]
//! drives them over the tree.
//!
//! Escape hatches are explicit comment markers, so every exception is
//! greppable and reviewed:
//!
//! * `// SAFETY: …` — required above (or on) every `unsafe` in an
//!   allowlisted file (the tensor runtime, the serving mmap layer);
//! * `// om-lint: allow(hash-collections)` — permits `HashMap`/`HashSet`
//!   on that line in a model-path crate;
//! * `// om-lint: allow(thread-spawn)` — permits a `spawn` call site
//!   outside the tensor runtime (e.g. the experiment runner's scoped
//!   trial threads, which must *not* run on the tensor pool);
//! * `// om-lint: not-a-kernel` — exempts a `pub fn` in `kernels.rs`
//!   from the serial-sibling requirement;
//! * `// om-fault: kill-point` — required above every
//!   `om_obs::fault::kill_point` call site outside `crates/obs/`, so the
//!   full set of fault-injection sites stays greppable.

use std::collections::BTreeSet;
use std::fmt;

use crate::lexer::{LexedFile, TokenKind};

/// The only file allowed to contain `unsafe` (and unmarked `spawn`).
pub const RUNTIME_PATH: &str = "crates/tensor/src/runtime.rs";

/// The serving mmap layer: raw `mmap(2)` syscalls and the zero-copy f32
/// reinterpretation of mapped arena blobs, each under a `// SAFETY:`
/// argument.
pub const MMAP_PATH: &str = "crates/serve/src/mmap.rs";

/// The AVX2 microkernel module: `std::arch` intrinsics behind the cached
/// `is_x86_feature_detected!` dispatch, each load/store under a
/// `// SAFETY:` argument.
pub const SIMD_PATH: &str = "crates/tensor/src/simd.rs";

/// The full `unsafe` allowlist. Everything else in the workspace is
/// safe Rust by construction; growing this list is a design decision,
/// not a convenience.
pub const UNSAFE_ALLOWED: &[&str] = &[RUNTIME_PATH, MMAP_PATH, SIMD_PATH];

/// Crates whose numeric results feed the paper's tables: any iteration
/// order nondeterminism here changes published numbers.
pub const MODEL_PATH_CRATES: &[&str] = &[
    "crates/core/",
    "crates/nn/",
    "crates/baselines/",
    "crates/experiments/",
    "crates/serve/",
];

/// Crates whose diagnostics must go through the om-obs logging facade
/// (`om_obs::info!` et al., gated by `OM_LOG`) instead of raw prints:
/// silent-by-default library code must stay silent, and everything it does
/// say must land in the run's event stream.
pub const PRINT_BANNED_CRATES: &[&str] = &[
    "crates/tensor/",
    "crates/nn/",
    "crates/core/",
    "crates/metrics/",
    "crates/serve/",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable rule name.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

pub(crate) fn idents_of(lexed: &LexedFile) -> impl Iterator<Item = (usize, &str)> {
    lexed.tokens.iter().filter_map(|t| match &t.kind {
        TokenKind::Ident(s) => Some((t.line, s.as_str())),
        _ => None,
    })
}

/// `unsafe` is confined to the allowlisted files ([`UNSAFE_ALLOWED`]),
/// and every site there must sit under a `// SAFETY:` comment explaining
/// why it is sound.
pub fn check_unsafe(rel: &str, lexed: &LexedFile) -> Vec<Violation> {
    let mut v = Vec::new();
    for (line, id) in idents_of(lexed) {
        if id != "unsafe" {
            continue;
        }
        if !UNSAFE_ALLOWED.contains(&rel) {
            v.push(Violation {
                file: rel.to_string(),
                line,
                rule: "unsafe-confinement",
                msg: format!(
                    "`unsafe` is only permitted in the allowlist: {}",
                    UNSAFE_ALLOWED.join(", ")
                ),
            });
        } else if !lexed.comment_block_above(line).contains("SAFETY:") {
            v.push(Violation {
                file: rel.to_string(),
                line,
                rule: "safety-comment",
                msg: "`unsafe` without a `// SAFETY:` comment directly above".to_string(),
            });
        }
    }
    v
}

/// No `HashMap`/`HashSet` in model-path crates: hash iteration order is
/// nondeterministic across runs, the exact bug class PR 1 removed by
/// hand. Use `BTreeMap`/`BTreeSet` or sort before iterating; line-level
/// escape: `// om-lint: allow(hash-collections)`.
pub fn check_hash_collections(rel: &str, lexed: &LexedFile) -> Vec<Violation> {
    if !MODEL_PATH_CRATES.iter().any(|c| rel.starts_with(c)) {
        return Vec::new();
    }
    let mut v = Vec::new();
    for (line, id) in idents_of(lexed) {
        if id != "HashMap" && id != "HashSet" {
            continue;
        }
        if lexed
            .comment_block_above(line)
            .contains("om-lint: allow(hash-collections)")
        {
            continue;
        }
        v.push(Violation {
            file: rel.to_string(),
            line,
            rule: "hash-collections",
            msg: format!(
                "`{id}` in a model-path crate: iteration order is nondeterministic; \
                 use BTreeMap/BTreeSet or mark the line \
                 `// om-lint: allow(hash-collections)` with a rationale"
            ),
        });
    }
    v
}

/// Threads are spawned only by the tensor runtime's pool; any other call
/// site needs an `// om-lint: allow(thread-spawn)` marker with a
/// rationale (nested parallelism on the pool deadlocks — see DESIGN.md).
pub fn check_thread_spawn(rel: &str, lexed: &LexedFile) -> Vec<Violation> {
    if rel == RUNTIME_PATH {
        return Vec::new();
    }
    let mut v = Vec::new();
    for (line, id) in idents_of(lexed) {
        if id != "spawn" {
            continue;
        }
        if lexed
            .comment_block_above(line)
            .contains("om-lint: allow(thread-spawn)")
        {
            continue;
        }
        v.push(Violation {
            file: rel.to_string(),
            line,
            rule: "thread-spawn",
            msg: "thread spawn outside the tensor runtime: run work through \
                  `om_tensor::runtime`, or mark the site \
                  `// om-lint: allow(thread-spawn)` with a rationale"
                .to_string(),
        });
    }
    v
}

/// No raw `println!`/`eprintln!` (or `print!`/`eprint!`) in the crates of
/// [`PRINT_BANNED_CRATES`]: route diagnostics through the om-obs logging
/// facade so `OM_LOG` controls them and enabled runs capture them in the
/// event stream. Line-level escape: `// om-lint: allow(print)` — e.g. for
/// a binary's final table rendering, which *is* the program's output.
pub fn check_print(rel: &str, lexed: &LexedFile) -> Vec<Violation> {
    if !PRINT_BANNED_CRATES.iter().any(|c| rel.starts_with(c)) {
        return Vec::new();
    }
    let mut v = Vec::new();
    for (line, id) in idents_of(lexed) {
        if id != "println" && id != "eprintln" && id != "print" && id != "eprint" {
            continue;
        }
        if lexed
            .comment_block_above(line)
            .contains("om-lint: allow(print)")
        {
            continue;
        }
        v.push(Violation {
            file: rel.to_string(),
            line,
            rule: "print",
            msg: format!(
                "raw `{id}!` in a model-path crate: use the om-obs logging \
                 facade (`om_obs::info!` …) so OM_LOG gates it, or mark the \
                 line `// om-lint: allow(print)` with a rationale"
            ),
        });
    }
    v
}

/// Every fault-injection site must be visibly marked: a `kill_point` call
/// outside `crates/obs/` (where the primitive lives) needs an
/// `// om-fault: kill-point` comment directly above, so `grep` over the
/// marker enumerates the complete kill-site inventory and a reviewer can
/// tell a deliberate chaos hook from a stray call.
pub fn check_kill_points(rel: &str, lexed: &LexedFile) -> Vec<Violation> {
    if rel.starts_with("crates/obs/") {
        return Vec::new();
    }
    let mut v = Vec::new();
    for (line, id) in idents_of(lexed) {
        if id != "kill_point" {
            continue;
        }
        if lexed
            .comment_block_above(line)
            .contains("om-fault: kill-point")
        {
            continue;
        }
        v.push(Violation {
            file: rel.to_string(),
            line,
            rule: "kill-point-marker",
            msg: "`kill_point` call without an `// om-fault: kill-point` \
                  marker comment above: fault-injection sites must be \
                  greppable"
                .to_string(),
        });
    }
    v
}

/// Top-level `pub fn` names of a lexed file, with their lines, in order.
pub(crate) fn top_level_pub_fns(lexed: &LexedFile) -> Vec<(usize, String)> {
    let mut fns = Vec::new();
    let mut depth = 0i32;
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => depth -= 1,
            TokenKind::Ident(s) if s == "fn" && depth == 0 => {
                let is_pub = i > 0
                    && matches!(&toks[i - 1].kind, TokenKind::Ident(p) if p == "pub");
                if !is_pub {
                    continue;
                }
                if let Some(TokenKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    fns.push((t.line, name.clone()));
                }
            }
            _ => {}
        }
    }
    fns
}

/// Every parallel kernel (top-level `pub fn` in `kernels.rs` not itself a
/// `*_serial` function) must have a `{name}_serial` reference sibling, and
/// both names must appear in the parity suite so the pair is actually
/// compared. Exempt a non-kernel helper with `// om-lint: not-a-kernel`.
pub fn check_kernel_parity(
    kernels_rel: &str,
    kernels: &LexedFile,
    parity: &LexedFile,
) -> Vec<Violation> {
    let fns = top_level_pub_fns(kernels);
    let names: BTreeSet<&str> = fns.iter().map(|(_, n)| n.as_str()).collect();
    let parity_idents: BTreeSet<&str> = idents_of(parity).map(|(_, id)| id).collect();
    let mut v = Vec::new();
    for (line, name) in &fns {
        if name.ends_with("_serial") {
            continue;
        }
        if kernels
            .comment_block_above(*line)
            .contains("om-lint: not-a-kernel")
        {
            continue;
        }
        let sibling = format!("{name}_serial");
        if !names.contains(sibling.as_str()) {
            v.push(Violation {
                file: kernels_rel.to_string(),
                line: *line,
                rule: "kernel-parity",
                msg: format!(
                    "parallel kernel `{name}` has no serial reference sibling `{sibling}`"
                ),
            });
            continue;
        }
        if !parity_idents.contains(name.as_str()) || !parity_idents.contains(sibling.as_str()) {
            v.push(Violation {
                file: kernels_rel.to_string(),
                line: *line,
                rule: "kernel-parity",
                msg: format!(
                    "kernel pair `{name}`/`{sibling}` is not registered in the parity suite"
                ),
            });
        }
    }
    v
}

/// The workspace manifest must carry the shared deny-list (at minimum
/// `unsafe_op_in_unsafe_fn`) and every first-party crate must opt in with
/// `[lints] workspace = true`.
pub fn check_workspace_lints(
    root_manifest: &str,
    crate_manifests: &[(String, String)],
) -> Vec<Violation> {
    let mut v = Vec::new();
    if !root_manifest.contains("[workspace.lints.rust]")
        || !root_manifest.contains("unsafe_op_in_unsafe_fn")
    {
        v.push(Violation {
            file: "Cargo.toml".to_string(),
            line: 1,
            rule: "workspace-lints",
            msg: "workspace manifest must define [workspace.lints.rust] with \
                  `unsafe_op_in_unsafe_fn = \"deny\"`"
                .to_string(),
        });
    }
    for (rel, text) in crate_manifests {
        if !text.contains("[lints]") || !text.contains("workspace = true") {
            v.push(Violation {
                file: rel.clone(),
                line: 1,
                rule: "workspace-lints",
                msg: "crate must opt into workspace lints with `[lints] workspace = true`"
                    .to_string(),
            });
        }
    }
    v
}
