//! The runtime's observability hooks, exercised against the real worker
//! pool: a pooled dispatch must record the dispatch/task/join spans, bump
//! the dispatch counters, and attribute per-worker busy time — all without
//! changing the kernel's result (the parity suite's bitwise contract).
//!
//! On a 1-core machine (`max_threads() == 1`, e.g. `OM_THREADS=1` CI) the
//! pool cannot engage, so only the inline-path accounting is checked.

use std::collections::BTreeSet;

use om_tensor::{kernels, runtime};

fn counter(metrics: &[om_obs::metrics::MetricSnapshot], name: &str) -> u64 {
    metrics
        .iter()
        .find_map(|m| match m {
            om_obs::metrics::MetricSnapshot::Counter { name: n, value } if n == name => {
                Some(*value)
            }
            _ => None,
        })
        .unwrap_or(0)
}

#[test]
fn dispatch_records_spans_and_busy_time() {
    let prev = runtime::set_threads(4);
    om_obs::set_enabled(true);
    let _ = om_obs::trace::drain(); // discard spans from earlier warm-up
    let _ = om_obs::metrics::snapshot(); // reset counters

    let n = 1 << 20; // many REDUCE_CHUNKs → dispatches whenever threads > 1
    let x: Vec<f32> = (0..n).map(|i| (i % 17) as f32 * 0.25).collect();
    let expected = kernels::sum_serial(&x);
    let got = kernels::sum(&x);

    om_obs::set_enabled(false);
    runtime::set_threads(prev);
    let threads = om_obs::trace::drain();
    let metrics = om_obs::metrics::snapshot();

    // Instrumentation is result-neutral (and the sum is bit-exact anyway).
    assert_eq!(got.to_bits(), expected.to_bits());

    if runtime::max_threads() == 1 {
        // Pool can't engage on this machine: the run must be accounted as
        // inline, with no dispatch spans.
        assert!(counter(&metrics, "runtime.inline_runs") >= 1);
        assert_eq!(counter(&metrics, "runtime.dispatches"), 0);
        return;
    }

    let names: BTreeSet<&str> = threads
        .iter()
        .flat_map(|t| t.spans.iter().map(|s| s.name))
        .collect();
    assert!(names.contains("runtime.parallel_for"), "spans seen: {names:?}");
    assert!(names.contains("runtime.join"), "spans seen: {names:?}");
    assert!(
        names.contains("runtime.task"),
        "workers must record task spans: {names:?}"
    );
    let busy: u64 = threads.iter().map(|t| t.busy_ns).sum();
    assert!(busy > 0, "busy time must be attributed");
    let busy_threads = threads.iter().filter(|t| t.busy_ns > 0).count();
    assert!(
        busy_threads >= 2,
        "caller and at least one worker must log busy time ({busy_threads} did)"
    );

    // The dispatch counters moved too.
    assert!(counter(&metrics, "runtime.dispatches") >= 1);
    assert!(counter(&metrics, "runtime.tasks") >= 2);
}
