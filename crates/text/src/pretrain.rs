//! Embedding warm starts replacing the paper's pretrained fastText vectors.
//!
//! Two strategies (substitution documented in DESIGN.md):
//!
//! 1. [`subword_hash_init`] — deterministic fastText-style initialisation:
//!    each word vector is the average of hashed character n-gram vectors,
//!    so morphologically-related words ("vampire"/"vampires") start close.
//! 2. [`SkipGram`] — a small skip-gram-with-negative-sampling trainer that
//!    refines the table on the actual corpus.

use om_tensor::{init, seeded_rng, Rng, Tensor};
use rand::RngExt as _;

use crate::vocab::Vocab;

/// FNV-1a hash, stable across runs/platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic per-ngram pseudo-random vector accumulated into `out`.
fn add_ngram_vector(ngram: &str, out: &mut [f32]) {
    let mut state = fnv1a(ngram.as_bytes());
    for v in out.iter_mut() {
        // xorshift64* stream seeded by the ngram hash
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let r = state.wrapping_mul(0x2545F4914F6CDD1D);
        // map the top 24 bits to (-1, 1)
        let unit = ((r >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0;
        *v += unit;
    }
}

/// Build a `[vocab, dim]` table where each word vector averages the hash
/// vectors of its character 3–5-grams (with boundary markers, as fastText
/// does). PAD stays zero; UNK gets a generic small vector.
pub fn subword_hash_init(vocab: &Vocab, dim: usize) -> Tensor {
    let n = vocab.len();
    let mut data = vec![0.0f32; n * dim];
    for id in 2..n {
        let word = format!("<{}>", vocab.token(id));
        let chars: Vec<char> = word.chars().collect();
        let row = &mut data[id * dim..(id + 1) * dim];
        let mut ngrams = 0usize;
        for len in 3..=5usize {
            if chars.len() < len {
                continue;
            }
            for start in 0..=chars.len() - len {
                let ng: String = chars[start..start + len].iter().collect();
                add_ngram_vector(&ng, row);
                ngrams += 1;
            }
        }
        if ngrams > 0 {
            let scale = 0.3 / ngrams as f32;
            for v in row.iter_mut() {
                *v *= scale;
            }
        }
    }
    // UNK: small deterministic vector distinct from PAD's zeros.
    add_ngram_vector("<unk>", &mut data[dim..2 * dim]);
    for v in data[dim..2 * dim].iter_mut() {
        *v *= 0.05;
    }
    Tensor::from_vec(data, &[n, dim])
}

/// Skip-gram with negative sampling over encoded documents.
pub struct SkipGram {
    /// Input (word) vectors — the table handed to the model afterwards.
    pub input: Tensor,
    /// Output (context) vectors.
    pub output: Tensor,
    dim: usize,
    window: usize,
    negatives: usize,
    lr: f32,
}

impl SkipGram {
    /// Initialise from an existing table (e.g. [`subword_hash_init`]).
    pub fn from_table(table: Tensor, window: usize, negatives: usize, lr: f32) -> SkipGram {
        let dims = table.dims().to_vec();
        assert_eq!(dims.len(), 2);
        let mut rng = seeded_rng(0x5eed);
        SkipGram {
            output: init::normal(&dims, 0.01, &mut rng),
            dim: dims[1],
            input: table,
            window,
            negatives,
            lr,
        }
    }

    /// One pass over the corpus of encoded documents (id sequences). Pads
    /// (id 0) are skipped. Classic SGNS updates, applied in place.
    pub fn train_epoch(&mut self, docs: &[Vec<usize>], rng: &mut Rng) {
        let vocab = self.input.dims()[0];
        let dim = self.dim;
        let mut input = self.input.data_mut();
        let mut output = self.output.data_mut();
        for doc in docs {
            for (center_pos, &center) in doc.iter().enumerate() {
                if center == 0 {
                    continue;
                }
                let lo = center_pos.saturating_sub(self.window);
                let hi = (center_pos + self.window + 1).min(doc.len());
                for (ctx_pos, &context) in doc.iter().enumerate().take(hi).skip(lo) {
                    if ctx_pos == center_pos || context == 0 {
                        continue;
                    }
                    // positive update + k negatives
                    for k in 0..=self.negatives {
                        let (target, label) = if k == 0 {
                            (context, 1.0f32)
                        } else {
                            (rng.random_range(2..vocab.max(3)), 0.0f32)
                        };
                        let w = center * dim;
                        let c = target * dim;
                        let dot: f32 = (0..dim).map(|j| input[w + j] * output[c + j]).sum();
                        let pred = 1.0 / (1.0 + (-dot).exp());
                        let g = self.lr * (label - pred);
                        for j in 0..dim {
                            let iw = input[w + j];
                            input[w + j] += g * output[c + j];
                            output[c + j] += g * iw;
                        }
                    }
                }
            }
        }
    }

    /// Consume the trainer, returning the refined input table.
    pub fn into_table(self) -> Tensor {
        self.input
    }

    /// The model's co-occurrence score `σ(vᵢₙ(center)·vₒᵤₜ(context))`; this
    /// is the probability SGNS assigns to the pair being a true skip-gram.
    pub fn score(&self, center: usize, context: usize) -> f32 {
        let dim = self.dim;
        let i = self.input.data();
        let o = self.output.data();
        let dot: f32 = (0..dim)
            .map(|j| i[center * dim + j] * o[context * dim + j])
            .sum();
        1.0 / (1.0 + (-dot).exp())
    }
}

/// Cosine similarity between two embedding rows (test/diagnostic helper).
pub fn cosine(table: &Tensor, a: usize, b: usize) -> f32 {
    let dim = table.dims()[1];
    let d = table.data();
    let ra = &d[a * dim..(a + 1) * dim];
    let rb = &d[b * dim..(b + 1) * dim];
    let dot: f32 = ra.iter().zip(rb).map(|(x, y)| x * y).sum();
    let na: f32 = ra.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = rb.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab_of(words: &[&str]) -> Vocab {
        let docs = [words.to_vec()];
        Vocab::build(docs.iter().map(|d| d.iter().copied()), 1, 1000)
    }

    #[test]
    fn hash_init_is_deterministic() {
        let v = vocab_of(&["vampire", "romance"]);
        let a = subword_hash_init(&v, 16).to_vec();
        let b = subword_hash_init(&v, 16).to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn pad_row_stays_zero() {
        let v = vocab_of(&["vampire"]);
        let t = subword_hash_init(&v, 8);
        assert!(t.to_vec()[..8].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn morphological_neighbours_start_close() {
        let v = vocab_of(&["vampire", "vampires", "soundtrack"]);
        let t = subword_hash_init(&v, 64);
        let related = cosine(&t, v.id("vampire"), v.id("vampires"));
        let unrelated = cosine(&t, v.id("vampire"), v.id("soundtrack"));
        assert!(
            related > unrelated + 0.2,
            "related {related} vs unrelated {unrelated}"
        );
    }

    #[test]
    fn skipgram_pulls_cooccurring_words_together() {
        // Corpus where "sci" and "fi" always co-occur, "cook" is separate.
        let v = vocab_of(&["sci", "fi", "cook", "book"]);
        let docs: Vec<Vec<usize>> = (0..200)
            .map(|i| {
                if i % 2 == 0 {
                    vec![v.id("sci"), v.id("fi")]
                } else {
                    vec![v.id("cook"), v.id("book")]
                }
            })
            .collect();
        let table = om_tensor::init::normal(&[v.len(), 16], 0.1, &mut seeded_rng(1));
        let mut sg = SkipGram::from_table(table, 2, 3, 0.05);
        let mut rng = seeded_rng(2);
        for _ in 0..12 {
            sg.train_epoch(&docs, &mut rng);
        }
        // The model must assign high probability to true skip-grams and low
        // probability to pairs that never co-occur.
        let together = sg.score(v.id("sci"), v.id("fi"));
        let apart = sg.score(v.id("sci"), v.id("book"));
        assert!(
            together > 0.55 && apart < 0.5 && together > apart,
            "co-occurring {together} should exceed non-co-occurring {apart}"
        );
    }

    #[test]
    fn skipgram_skips_padding() {
        let v = vocab_of(&["a", "b"]);
        let docs = vec![vec![0usize, 0, 0]];
        let table = subword_hash_init(&v, 8);
        let before = table.to_vec();
        let mut sg = SkipGram::from_table(table, 2, 2, 0.1);
        sg.train_epoch(&docs, &mut seeded_rng(3));
        assert_eq!(sg.into_table().to_vec(), before);
    }
}
