//! Gradcheck property suite: every differentiable op in `om_tensor::ops`
//! validated against central finite differences, at more than one shape,
//! and under both thread settings — serial (`set_threads(1)`) and the
//! default worker pool. Because the parallel kernels are bitwise identical
//! to their serial references, the analytic gradients must agree with the
//! numeric ones in *both* configurations; a divergence here is how a
//! nondeterministic or wrong parallel kernel would first surface.
//!
//! The suite can additionally be pinned fully serial from the outside with
//! `OM_THREADS=1 cargo test --test gradcheck_ops` (CI runs both).

use std::sync::{Mutex, MutexGuard, OnceLock};

use om_tensor::{gradcheck, init, runtime, seeded_rng, Tensor};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// `runtime::set_threads` is process-global and the test harness runs tests
/// on parallel threads, so every test that flips the thread count holds
/// this lock for its whole body.
fn thread_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn param(dims: &[usize], seed: u64) -> Tensor {
    init::uniform(dims, -1.0, 1.0, &mut seeded_rng(seed)).requires_grad()
}

fn constant(dims: &[usize], seed: u64) -> Tensor {
    init::uniform(dims, -1.0, 1.0, &mut seeded_rng(seed))
}

/// Run one gradcheck serially and once on the default pool; the closure
/// must rebuild the graph from the parameter on every call.
fn check_both(name: &str, p: &Tensor, f: impl Fn(&Tensor) -> Tensor) {
    check_both_with(name, p, f, EPS, TOL);
}

fn check_both_with(name: &str, p: &Tensor, f: impl Fn(&Tensor) -> Tensor, eps: f32, tol: f32) {
    let _guard = thread_lock();
    for threads in [1usize, 0] {
        let prev = runtime::set_threads(threads);
        let r = gradcheck(p, &f, eps);
        runtime::set_threads(prev);
        assert!(
            r.passes(tol),
            "{name} failed gradcheck with set_threads({threads}): {r:?}"
        );
    }
}

// ---------------------------------------------------------------- elementwise

#[test]
fn gc_add() {
    for (shape, seed) in [(&[2usize, 3][..], 1), (&[7, 11][..], 2)] {
        let w = param(shape, seed);
        let other = constant(shape, seed + 100);
        check_both("add", &w, |w| w.add(&other).square().mean_all());
    }
}

#[test]
fn gc_sub() {
    for (shape, seed) in [(&[1usize, 1][..], 3), (&[5, 9][..], 4)] {
        let w = param(shape, seed);
        let other = constant(shape, seed + 100);
        check_both("sub", &w, |w| w.sub(&other).square().mean_all());
    }
}

#[test]
fn gc_mul() {
    for (shape, seed) in [(&[3usize, 2][..], 5), (&[13, 4][..], 6)] {
        let w = param(shape, seed);
        let other = constant(shape, seed + 100);
        check_both("mul", &w, |w| w.mul(&other).sum_all());
    }
}

#[test]
fn gc_scale_add_scalar_neg() {
    let w = param(&[4, 5], 7);
    check_both("scale", &w, |w| w.scale(-2.5).square().mean_all());
    check_both("add_scalar", &w, |w| w.add_scalar(1.5).square().mean_all());
    check_both("neg", &w, |w| w.neg().square().mean_all());
}

#[test]
fn gc_add_row() {
    // Both roles: the matrix and the broadcast row.
    let m = param(&[6, 5], 8);
    let row = constant(&[5], 108);
    check_both("add_row(matrix)", &m, |m| m.add_row(&row).square().mean_all());
    let r = param(&[5], 9);
    let mat = constant(&[6, 5], 109);
    check_both("add_row(row)", &r, |r| mat.add_row(r).square().mean_all());
}

#[test]
fn gc_mul_row() {
    let m = param(&[4, 7], 10);
    let row = constant(&[7], 110);
    check_both("mul_row(matrix)", &m, |m| m.mul_row(&row).square().mean_all());
    let r = param(&[7], 11);
    let mat = constant(&[4, 7], 111);
    check_both("mul_row(row)", &r, |r| mat.mul_row(r).square().mean_all());
}

#[test]
fn gc_relu() {
    // Keep every coordinate away from the kink at 0 so the central
    // difference stays on one side of it.
    let w = param(&[5, 6], 12);
    {
        let mut d = w.data_mut();
        for v in d.iter_mut() {
            if v.abs() < 3.0 * EPS {
                *v += 0.1;
            }
        }
    }
    check_both("relu", &w, |w| w.relu().square().mean_all());
}

#[test]
fn gc_sigmoid_tanh() {
    for (shape, seed) in [(&[2usize, 2][..], 13), (&[9, 5][..], 14)] {
        let w = param(shape, seed);
        check_both("sigmoid", &w, |w| w.sigmoid().square().mean_all());
        check_both("tanh_act", &w, |w| w.tanh_act().square().mean_all());
    }
}

#[test]
fn gc_exp_log_square() {
    let w = param(&[3, 8], 15);
    check_both("exp", &w, |w| w.exp().mean_all());
    check_both("square", &w, |w| w.square().mean_all());
    // log needs a positive domain.
    let pos = init::uniform(&[3, 8], 0.5, 1.5, &mut seeded_rng(16)).requires_grad();
    check_both("log", &pos, |w| w.log().mean_all());
}

// --------------------------------------------------------------- matmul

#[test]
fn gc_matmul_small() {
    let w = param(&[3, 4], 17);
    let x = constant(&[2, 3], 117);
    check_both("matmul", &w, |w| x.matmul(w).square().mean_all());
    // Left operand too.
    let a = param(&[2, 3], 18);
    let b = constant(&[3, 4], 118);
    check_both("matmul(left)", &a, |a| a.matmul(&b).square().mean_all());
}

#[test]
fn gc_matmul_above_parallel_threshold() {
    // m*n*k = 256 * 2 * 256 = 131072 ≥ GEMM_PAR_FLOPS, so with the pool
    // enabled this exercises the parallel blocked GEMM (forward and both
    // backward products). Inputs are kept small in magnitude (and the loss
    // is exactly quadratic in `w`, so a larger eps costs no truncation
    // error): at 256-deep f32 accumulations, finite-difference cancellation
    // noise is the limiting factor, not the kernel.
    let w = param(&[256, 2], 19);
    let x = init::uniform(&[256, 256], -0.2, 0.2, &mut seeded_rng(119));
    check_both_with("matmul(parallel)", &w, |w| x.matmul(w).square().mean_all(), 5e-2, TOL);
}

#[test]
fn gc_transpose() {
    let w = param(&[3, 5], 20);
    let m = constant(&[5, 3], 120);
    check_both("transpose", &w, |w| w.transpose().mul(&m).sum_all());
}

// --------------------------------------------------------------- reductions

#[test]
fn gc_reductions() {
    for (shape, seed) in [(&[1usize, 1][..], 21), (&[7, 13][..], 22)] {
        let w = param(shape, seed);
        check_both("sum_all", &w, |w| w.sum_all());
        check_both("mean_all", &w, |w| w.mean_all());
        check_both("sum_rows+mean_cols", &w, |w| {
            w.sum_rows().square().mean_all().add(&w.mean_cols().square().mean_all())
        });
        check_both("sum_cols+mean_rows", &w, |w| {
            w.sum_cols().square().mean_all().add(&w.mean_rows().square().mean_all())
        });
    }
}

#[test]
fn gc_sum_rows_above_parallel_threshold() {
    // 300 columns crosses the column-block grain of the parallel sum_rows.
    let w = param(&[3, 300], 23);
    check_both("sum_rows(parallel)", &w, |w| w.sum_rows().square().mean_all());
}

// --------------------------------------------------------------- softmax

#[test]
fn gc_softmax_family() {
    // The 33-row shape crosses the 8-row softmax fill grain, so the default
    // setting runs the parallel path; tolerance is slightly relaxed there
    // because the mean over 231 f32 squares limits finite-difference
    // resolution.
    for (rows, cols, seed, tol) in [(1usize, 4usize, 24, TOL), (33, 7, 25, 4e-2)] {
        let w = param(&[rows, cols], seed);
        let targets: Vec<usize> = (0..rows).map(|i| i % cols).collect();
        check_both_with(
            "log_softmax_rows",
            &w,
            |w| w.log_softmax_rows().square().mean_all(),
            EPS,
            tol,
        );
        check_both_with(
            "softmax_rows",
            &w,
            |w| w.softmax_rows().square().mean_all(),
            EPS,
            tol,
        );
        check_both("nll_gather", &w, |w| w.nll_gather(&targets));
        check_both_with("cross_entropy", &w, |w| w.cross_entropy(&targets), EPS, tol);
    }
}

// --------------------------------------------------------------- special

#[test]
fn gc_grad_scale_and_reversal() {
    // grad_scale and gradient_reversal deliberately decouple the gradient
    // from the value (identity forward), so finite differences cannot see
    // them; instead verify the backward against the unmodified gradient:
    // grad_scale(c) must yield c·g and gradient_reversal(λ) must yield -λ·g,
    // under both thread settings.
    let _guard = thread_lock();
    for threads in [1usize, 0] {
        let prev = runtime::set_threads(threads);
        let w = param(&[4, 4], 26);
        w.zero_grad();
        w.square().mean_all().backward();
        let base = w.grad_vec().unwrap();
        w.zero_grad();
        w.grad_scale(0.3).square().mean_all().backward();
        let scaled = w.grad_vec().unwrap();
        w.zero_grad();
        w.gradient_reversal(0.7).square().mean_all().backward();
        let reversed = w.grad_vec().unwrap();
        runtime::set_threads(prev);
        for i in 0..base.len() {
            assert!(
                (scaled[i] - 0.3 * base[i]).abs() < 1e-6,
                "grad_scale at {i} with set_threads({threads})"
            );
            assert!(
                (reversed[i] + 0.7 * base[i]).abs() < 1e-6,
                "gradient_reversal at {i} with set_threads({threads})"
            );
        }
    }
}

#[test]
fn gc_l2_normalize_rows() {
    for (shape, seed) in [(&[1usize, 4][..], 27), (&[9, 6][..], 28)] {
        let w = param(shape, seed);
        let m = constant(shape, seed + 100);
        check_both("l2_normalize_rows", &w, |w| {
            w.l2_normalize_rows().mul(&m).sum_all()
        });
    }
}

#[test]
fn gc_layer_norm_rows() {
    for (shape, seed) in [(&[2usize, 5][..], 29), (&[11, 8][..], 30)] {
        let w = param(shape, seed);
        let m = constant(shape, seed + 100);
        check_both("layer_norm_rows", &w, |w| {
            w.layer_norm_rows().mul(&m).sum_all()
        });
    }
}

// --------------------------------------------------------------- structural

#[test]
fn gc_reshape() {
    let w = param(&[3, 4], 31);
    let m = constant(&[2, 6], 131);
    check_both("reshape", &w, |w| w.reshape(&[2, 6]).mul(&m).sum_all());
}

#[test]
fn gc_concat_and_stack() {
    let w = param(&[3, 2], 32);
    let side = constant(&[3, 4], 132);
    check_both("concat_cols", &w, |w| {
        Tensor::concat_cols(&[w, &side]).square().mean_all()
    });
    let below = constant(&[2, 2], 133);
    check_both("concat_rows", &w, |w| {
        Tensor::concat_rows(&[w, &below]).square().mean_all()
    });
    let row = param(&[4], 33);
    let other_row = constant(&[4], 134);
    check_both("stack_rows", &row, |r| {
        Tensor::stack_rows(&[r, &other_row, r]).square().mean_all()
    });
}

#[test]
fn gc_embedding_lookup() {
    // Repeated indices exercise the scatter-add backward.
    for (vocab, d, idx, seed) in [
        (6usize, 3usize, vec![0usize, 2, 2, 5], 34u64),
        (80, 4, (0..70usize).map(|i| (i * 7) % 80).collect(), 35),
    ] {
        let table = param(&[vocab, d], seed);
        check_both("embedding_lookup", &table, |t| {
            t.embedding_lookup(&idx).square().mean_all()
        });
    }
}

#[test]
fn gc_unfold_windows() {
    // Overlapping windows make the backward accumulate; the larger shape
    // crosses the 16-row fill grain so the pool participates.
    for (b, l, d, k, seed) in [(1usize, 5usize, 3usize, 2usize, 36u64), (4, 9, 2, 3, 37)] {
        let w = param(&[b, l, d], seed);
        check_both("unfold_windows", &w, |w| {
            w.unfold_windows(k).square().mean_all()
        });
    }
}

#[test]
fn gc_max_over_time() {
    // Values are multiples of 0.05, distinct within every (batch, filter)
    // column, so an EPS nudge can never flip an argmax and the loss stays
    // differentiable at every probe point.
    for (b, t, f, seed) in [(1usize, 3usize, 2usize, 38u64), (6, 5, 4, 39)] {
        let w = param(&[b, t, f], seed);
        {
            let mut d = w.data_mut();
            for (i, v) in d.iter_mut().enumerate() {
                *v = ((i * 31) % 53) as f32 * 0.05;
            }
        }
        check_both("max_over_time", &w, |w| {
            w.max_over_time().square().mean_all()
        });
    }
}

#[test]
fn gc_select_rows() {
    // Row repetition exercises the scatter backward.
    let w = param(&[6, 4], 40);
    let rows = [0usize, 5, 2, 2, 1];
    check_both("select_rows", &w, |w| {
        w.select_rows(&rows).square().mean_all()
    });
}

// --------------------------------------------------------------- composition

#[test]
fn gc_textcnn_like_chain() {
    // unfold → matmul → add_row → relu-free smooth head: the exact lowering
    // TextCNN uses, as one chained graph.
    let w = param(&[6, 5], 41); // [k*d, f] with k=3, d=2, f=5
    let x = constant(&[2, 7, 2], 141);
    let bias = constant(&[5], 142);
    check_both("unfold+matmul+bias chain", &w, |w| {
        x.unfold_windows(3)
            .matmul(w)
            .add_row(&bias)
            .tanh_act()
            .reshape(&[2, 5, 5])
            .max_over_time()
            .square()
            .mean_all()
    });
}
