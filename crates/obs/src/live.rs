//! The live stats plane: always-on counters, integer gauges and
//! seqlock-snapshot histograms that can be read *while the server runs*.
//!
//! [`crate::metrics`] is a run-scoped registry: [`crate::metrics::snapshot`]
//! reads **and resets**, which is right for per-run artifacts but wrong
//! for a `/metrics` endpoint that must observe monotone totals at any
//! moment. This module is its live twin:
//!
//! * updates are single relaxed atomic ops (counters, gauges) or a short
//!   seqlock-guarded run of atomic adds (histograms) — no OS lock is ever
//!   taken on the update path, and there is nothing to configure: the
//!   plane is always on, because its cost is a handful of uncontended
//!   atomics per request;
//! * reads never reset: [`snapshot_all`] is non-destructive, so scraping
//!   `/metrics` twice, or scraping while `run_finish` drains the offline
//!   registry, cannot steal samples from anyone;
//! * histogram snapshots cannot tear. Each histogram carries a sequence
//!   word that writers hold odd for the duration of their three bucket /
//!   count / sum increments; [`LiveHistogram::snapshot`] retries until it
//!   reads the same *even* sequence on both sides of its bucket copy, at
//!   which point `count == Σ buckets` and `sum` matches exactly (the
//!   argument is spelled out in DESIGN.md § Live telemetry).
//!
//! Rendering: [`render_prometheus`] produces Prometheus text exposition
//! (dots become underscores; power-of-two buckets become cumulative
//! `le` buckets), [`render_statz`] the JSON form — both consumed by the
//! [`crate::http`] endpoint.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;
use crate::metrics::{bucket_bounds, bucket_index, HIST_BUCKETS};

/// A monotone live counter (never reset).
#[derive(Clone)]
pub struct LiveCounter(Arc<AtomicU64>);

impl LiveCounter {
    /// Add `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An integer live gauge (queue depths, in-flight counts, 0/1 liveness).
#[derive(Clone)]
pub struct LiveGauge(Arc<AtomicU64>);

impl LiveGauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increment (e.g. a request entered the queue).
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement, saturating at zero.
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Raise the gauge to `v` if it is below (high-water marks).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct LiveHisto {
    /// Seqlock word: odd while a writer is mid-update. Writers serialise
    /// on it with a CAS (uncontended in the serving shape: one worker
    /// thread feeds each stage histogram); readers never write it.
    seq: AtomicU64,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A live histogram over `u64` samples (nanoseconds, in practice) with
/// tear-free snapshots. Same 64 power-of-two buckets as
/// [`crate::metrics::Histogram`].
#[derive(Clone)]
pub struct LiveHistogram(Arc<LiveHisto>);

/// One tear-free histogram snapshot: `count` always equals the sum of
/// `buckets`, and `sum` was produced by exactly those samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Dense per-bucket counts, `HIST_BUCKETS` long.
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Nearest-rank quantile estimate (bucket midpoint, ≤ 2× relative
    /// error); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        crate::metrics::quantile_of(&self.buckets, q)
    }

    /// Exact mean of the recorded samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

impl LiveHistogram {
    fn new() -> LiveHistogram {
        LiveHistogram(Arc::new(LiveHisto {
            seq: AtomicU64::new(0),
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Record one sample. Writers serialise on the sequence word (a CAS
    /// even→odd, then three relaxed adds, then a release store back to
    /// even); with the single-writer-per-histogram serving shape the CAS
    /// never spins.
    #[inline]
    pub fn record(&self, v: u64) {
        let h = &self.0;
        let mut seq = h.seq.load(Ordering::Relaxed);
        loop {
            if seq & 1 == 1 {
                std::hint::spin_loop();
                seq = h.seq.load(Ordering::Relaxed);
                continue;
            }
            match h
                .seq
                .compare_exchange_weak(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(cur) => seq = cur,
            }
        }
        if let Some(b) = h.buckets.get(bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.seq.store(seq + 2, Ordering::Release);
    }

    /// A consistent snapshot: retries the bucket copy until the sequence
    /// word is even and unchanged across it, so the returned counts
    /// reflect a quiescent point (`count == Σ buckets`, `sum` exact).
    pub fn snapshot(&self) -> HistSnapshot {
        let h = &self.0;
        loop {
            let s1 = h.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let buckets: Vec<u64> = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
            let count = h.count.load(Ordering::Relaxed);
            let sum = h.sum.load(Ordering::Relaxed);
            std::sync::atomic::fence(Ordering::Acquire);
            if h.seq.load(Ordering::Relaxed) == s1 {
                return HistSnapshot { count, sum, buckets };
            }
        }
    }

    /// Samples recorded so far (monotone; may be mid-update relative to
    /// the buckets — use [`LiveHistogram::snapshot`] for consistency).
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

enum LiveMetric {
    Counter(LiveCounter),
    Gauge(LiveGauge),
    Histogram(LiveHistogram),
}

static REGISTRY: OnceLock<Mutex<BTreeMap<String, LiveMetric>>> = OnceLock::new();

fn registry() -> &'static Mutex<BTreeMap<String, LiveMetric>> {
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<String, LiveMetric>> {
    // The map only ever grows and every value is Arc-backed, so a panic
    // mid-insert cannot leave torn state worth poisoning over.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Look up (or create) the live counter `name`. A name registered with a
/// different kind returns a fresh detached handle (and a WARN log) rather
/// than panicking — the live plane must never take a serving thread down.
pub fn counter(name: &str) -> LiveCounter {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| LiveMetric::Counter(LiveCounter(Arc::new(AtomicU64::new(0)))))
    {
        LiveMetric::Counter(c) => c.clone(),
        _ => {
            crate::warn!("live metric `{name}` already registered with a different kind");
            LiveCounter(Arc::new(AtomicU64::new(0)))
        }
    }
}

/// Look up (or create) the live gauge `name`; see [`counter`] on kind
/// mismatches.
pub fn gauge(name: &str) -> LiveGauge {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| LiveMetric::Gauge(LiveGauge(Arc::new(AtomicU64::new(0)))))
    {
        LiveMetric::Gauge(g) => g.clone(),
        _ => {
            crate::warn!("live metric `{name}` already registered with a different kind");
            LiveGauge(Arc::new(AtomicU64::new(0)))
        }
    }
}

/// Look up (or create) the live histogram `name`; see [`counter`] on kind
/// mismatches.
pub fn histogram(name: &str) -> LiveHistogram {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| LiveMetric::Histogram(LiveHistogram::new()))
    {
        LiveMetric::Histogram(h) => h.clone(),
        _ => {
            crate::warn!("live metric `{name}` already registered with a different kind");
            LiveHistogram::new()
        }
    }
}

/// One live metric's state, as captured by [`snapshot_all`].
#[derive(Debug, Clone)]
pub enum LiveSnapshot {
    /// Counter value.
    Counter {
        /// Registered name.
        name: String,
        /// Monotone total.
        value: u64,
    },
    /// Gauge value.
    Gauge {
        /// Registered name.
        name: String,
        /// Last written value.
        value: u64,
    },
    /// Histogram state.
    Histogram {
        /// Registered name.
        name: String,
        /// Tear-free state.
        hist: HistSnapshot,
    },
}

impl LiveSnapshot {
    /// The metric's registered name.
    pub fn name(&self) -> &str {
        match self {
            LiveSnapshot::Counter { name, .. }
            | LiveSnapshot::Gauge { name, .. }
            | LiveSnapshot::Histogram { name, .. } => name,
        }
    }
}

/// Non-destructive snapshot of every live metric, sorted by name. Empty
/// metrics are included: a registered-but-unsampled histogram is still a
/// fact worth exposing (`/metrics` scrapes want stable series).
pub fn snapshot_all() -> Vec<LiveSnapshot> {
    let reg = lock_registry();
    reg.iter()
        .map(|(name, metric)| match metric {
            LiveMetric::Counter(c) => LiveSnapshot::Counter {
                name: name.clone(),
                value: c.get(),
            },
            LiveMetric::Gauge(g) => LiveSnapshot::Gauge {
                name: name.clone(),
                value: g.get(),
            },
            LiveMetric::Histogram(h) => LiveSnapshot::Histogram {
                name: name.clone(),
                hist: h.snapshot(),
            },
        })
        .collect()
}

/// A metric name in Prometheus form: every character outside
/// `[a-zA-Z0-9_]` becomes `_` (so `serve.queue_wait` →
/// `serve_queue_wait`).
pub fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

/// Render snapshots as Prometheus text exposition (version 0.0.4):
/// counters and gauges as single samples, histograms as cumulative
/// `_bucket{le="…"}` series plus `_sum` / `_count`.
pub fn render_prometheus(snaps: &[LiveSnapshot]) -> String {
    let mut out = String::new();
    for snap in snaps {
        let pname = prometheus_name(snap.name());
        match snap {
            LiveSnapshot::Counter { value, .. } => {
                out.push_str(&format!("# TYPE {pname} counter\n{pname} {value}\n"));
            }
            LiveSnapshot::Gauge { value, .. } => {
                out.push_str(&format!("# TYPE {pname} gauge\n{pname} {value}\n"));
            }
            LiveSnapshot::Histogram { hist, .. } => {
                out.push_str(&format!("# TYPE {pname} histogram\n"));
                // Render up to the highest non-empty bucket, cumulative,
                // then the mandatory `+Inf` catch-all.
                let last = hist
                    .buckets
                    .iter()
                    .rposition(|&c| c > 0)
                    .map(|i| i + 1)
                    .unwrap_or(0);
                let mut cum = 0u64;
                for (i, c) in hist.buckets.iter().take(last).enumerate() {
                    cum += c;
                    let (_, hi) = bucket_bounds(i);
                    out.push_str(&format!("{pname}_bucket{{le=\"{hi}\"}} {cum}\n"));
                }
                out.push_str(&format!(
                    "{pname}_bucket{{le=\"+Inf\"}} {}\n{pname}_sum {}\n{pname}_count {}\n",
                    hist.count, hist.sum, hist.count
                ));
            }
        }
    }
    out
}

/// Render snapshots as the `/statz` JSON object: one key per metric;
/// histograms carry count/sum/quantile estimates plus the sparse buckets.
pub fn render_statz(snaps: &[LiveSnapshot]) -> Json {
    let mut obj = BTreeMap::new();
    for snap in snaps {
        let value = match snap {
            LiveSnapshot::Counter { value, .. } | LiveSnapshot::Gauge { value, .. } => {
                Json::Num(*value as f64)
            }
            LiveSnapshot::Histogram { hist, .. } => {
                let mut h = BTreeMap::new();
                h.insert("count".to_string(), Json::Num(hist.count as f64));
                h.insert("sum".to_string(), Json::Num(hist.sum as f64));
                for (key, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                    if let Some(est) = hist.quantile(q) {
                        h.insert(key.to_string(), Json::Num(est as f64));
                    }
                }
                let buckets: Vec<Json> = hist
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| Json::Arr(vec![Json::Num(i as f64), Json::Num(c as f64)]))
                    .collect();
                h.insert("buckets".to_string(), Json::Arr(buckets));
                Json::Obj(h)
            }
        };
        obj.insert(snap.name().to_string(), value);
    }
    Json::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_are_live_and_non_resetting() {
        let c = counter("test.live.counter");
        c.add(3);
        let _ = snapshot_all();
        c.add(2);
        assert_eq!(counter("test.live.counter").get(), 5, "snapshots must not reset");
        let g = gauge("test.live.gauge");
        g.set(7);
        g.inc();
        g.dec();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 5);
        g.raise(9);
        g.raise(4);
        assert_eq!(g.get(), 9, "raise keeps the high-water mark");
        let z = gauge("test.live.zero");
        z.dec();
        assert_eq!(z.get(), 0, "dec saturates at zero");
    }

    #[test]
    fn histogram_snapshot_is_internally_consistent() {
        let h = histogram("test.live.hist");
        for v in [0u64, 1, 5, 1000, 123_456] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 124_462);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        assert!(snap.quantile(0.5).is_some());
        assert_eq!(snap.buckets.len(), HIST_BUCKETS);
    }

    #[test]
    fn concurrent_writers_never_produce_a_torn_snapshot() {
        let h = histogram("test.live.torn");
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let h = h.clone();
                // om-lint: allow(thread-spawn) — test thread, not pool work.
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        h.record(w * 10_000 + i);
                    }
                })
            })
            .collect();
        // Read continuously while the writers hammer: every snapshot must
        // satisfy count == Σ buckets (the no-tear invariant).
        for _ in 0..200 {
            let snap = h.snapshot();
            assert_eq!(
                snap.buckets.iter().sum::<u64>(),
                snap.count,
                "torn snapshot observed"
            );
        }
        for w in writers {
            w.join().expect("writer");
        }
        let final_snap = h.snapshot();
        assert_eq!(final_snap.count, 8_000);
        assert_eq!(final_snap.buckets.iter().sum::<u64>(), 8_000);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_named() {
        let h = histogram("test.live.prom");
        h.record(1);
        h.record(3);
        let snaps: Vec<LiveSnapshot> = snapshot_all()
            .into_iter()
            .filter(|s| s.name() == "test.live.prom" || s.name() == "test.live.counter")
            .collect();
        let text = render_prometheus(&snaps);
        assert!(text.contains("# TYPE test_live_prom histogram"), "{text}");
        assert!(text.contains("test_live_prom_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("test_live_prom_count 2"), "{text}");
        assert!(text.contains("test_live_prom_sum 4"), "{text}");
        // le="1" covers the sample 1; le="3" covers [2,3] cumulatively.
        assert!(text.contains("test_live_prom_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("test_live_prom_bucket{le=\"3\"} 2"), "{text}");
    }

    #[test]
    fn statz_rendering_parses_back() {
        let c = counter("test.live.statz");
        c.add(1);
        let h = histogram("test.live.statz_h");
        h.record(42);
        let json = render_statz(&snapshot_all());
        let parsed = Json::parse(&json.to_string()).expect("statz JSON parses");
        assert_eq!(
            parsed.get("test.live.statz_h").and_then(|h| h.get("count")).and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn kind_mismatch_degrades_instead_of_panicking() {
        let _ = counter("test.live.kind");
        let g = gauge("test.live.kind");
        g.set(5);
        assert_eq!(g.get(), 5, "detached handle still works");
        assert_eq!(counter("test.live.kind").get(), 0, "registry keeps the original");
    }
}
