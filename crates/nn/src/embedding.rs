//! Token-embedding lookup table.

use om_tensor::{init, Rng, Tensor};

use crate::module::HasParams;

/// A trainable `[vocab, dim]` embedding table.
///
/// In the reproduction this replaces the paper's pretrained 300-d fastText
/// vectors; `om-text` offers subword-hash initialisation and skip-gram
/// pretraining to provide the analogous warm start (see DESIGN.md).
pub struct Embedding {
    /// The `[vocab, dim]` table.
    pub table: Tensor,
}

impl Embedding {
    /// Randomly initialised table with `N(0, 0.1)` entries.
    pub fn new(vocab: usize, dim: usize, rng: &mut Rng) -> Embedding {
        Embedding {
            table: init::normal(&[vocab, dim], 0.1, rng).requires_grad(),
        }
    }

    /// Build from a pre-initialised table (e.g. subword-hash or skip-gram
    /// pretrained weights).
    pub fn from_table(table: Tensor) -> Embedding {
        assert_eq!(table.dims().len(), 2, "embedding table must be 2-D");
        let table = if table.is_parameter() {
            table
        } else {
            table.requires_grad()
        };
        Embedding { table }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.dims()[0]
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.table.dims()[1]
    }

    /// Embed a flat index sequence → `[len, dim]`.
    pub fn forward(&self, indices: &[usize]) -> Tensor {
        self.table.embedding_lookup(indices)
    }

    /// Embed a batch of equal-length documents → `[batch, len, dim]`.
    pub fn forward_batch(&self, docs: &[Vec<usize>]) -> Tensor {
        assert!(!docs.is_empty(), "forward_batch: empty batch");
        let len = docs[0].len();
        let flat: Vec<usize> = docs
            .iter()
            .flat_map(|d| {
                assert_eq!(d.len(), len, "forward_batch: ragged documents");
                d.iter().copied()
            })
            .collect();
        self.table
            .embedding_lookup(&flat)
            .reshape(&[docs.len(), len, self.dim()])
    }
}

impl HasParams for Embedding {
    fn params(&self) -> Vec<Tensor> {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_tensor::seeded_rng;

    #[test]
    fn lookup_shape() {
        let e = Embedding::new(10, 4, &mut seeded_rng(1));
        assert_eq!(e.forward(&[1, 2, 3]).dims(), &[3, 4]);
        assert_eq!(e.vocab(), 10);
        assert_eq!(e.dim(), 4);
    }

    #[test]
    fn batch_shape() {
        let e = Embedding::new(10, 4, &mut seeded_rng(1));
        let docs = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        assert_eq!(e.forward_batch(&docs).dims(), &[3, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_batch_panics() {
        let e = Embedding::new(10, 4, &mut seeded_rng(1));
        let docs = vec![vec![0, 1], vec![2]];
        let _ = e.forward_batch(&docs);
    }

    #[test]
    fn gradient_flows_to_table() {
        let e = Embedding::new(5, 2, &mut seeded_rng(2));
        e.forward(&[3, 3]).sum_all().backward();
        let g = e.table.grad_vec().unwrap();
        assert_eq!(&g[6..8], &[2.0, 2.0]); // row 3 hit twice
        assert!(g[0..6].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_table_promotes_to_parameter() {
        let t = Tensor::zeros(&[4, 3]);
        let e = Embedding::from_table(t);
        assert!(e.table.is_parameter());
    }
}
