//! Offline no-op subset of `serde`.
//!
//! Nothing in this workspace serialises through serde at runtime (the data
//! loader hand-rolls its JSON field extraction), so the derives only need
//! to *exist* for the annotated types to compile. The re-exported derive
//! macros expand to nothing.

pub use serde_derive::{Deserialize, Serialize};
