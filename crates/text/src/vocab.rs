//! Vocabulary construction and token-id encoding.

use std::collections::HashMap;

/// Reserved id 0: padding.
pub const PAD_TOKEN: usize = 0;
/// Reserved id 1: unknown word.
pub const UNK_TOKEN: usize = 1;

/// A frequency-pruned token vocabulary with reserved PAD and UNK slots.
#[derive(Debug, Clone)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
    counts: Vec<u64>,
}

impl Vocab {
    /// Build from an iterator over token streams, keeping tokens that occur
    /// at least `min_count` times, most-frequent first, capped at
    /// `max_size` (including the two reserved slots).
    pub fn build<'a, I, T>(corpus: I, min_count: u64, max_size: usize) -> Vocab
    where
        I: IntoIterator<Item = T>,
        T: IntoIterator<Item = &'a str>,
    {
        assert!(max_size > 2, "vocab must have room beyond PAD/UNK");
        let mut freq: HashMap<String, u64> = HashMap::new();
        for doc in corpus {
            for tok in doc {
                *freq.entry(tok.to_owned()).or_insert(0) += 1;
            }
        }
        let mut entries: Vec<(String, u64)> =
            freq.into_iter().filter(|(_, c)| *c >= min_count).collect();
        // Most frequent first; ties alphabetical for determinism.
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(max_size - 2);

        let mut id_to_token = vec!["<pad>".to_owned(), "<unk>".to_owned()];
        let mut counts = vec![0u64, 0u64];
        let mut token_to_id = HashMap::new();
        for (tok, c) in entries {
            token_to_id.insert(tok.clone(), id_to_token.len());
            id_to_token.push(tok);
            counts.push(c);
        }
        Vocab {
            token_to_id,
            id_to_token,
            counts,
        }
    }

    /// Number of ids (including PAD and UNK).
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when only the reserved tokens exist.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.len() <= 2
    }

    /// Id for a token, or `UNK_TOKEN`.
    pub fn id(&self, token: &str) -> usize {
        self.token_to_id.get(token).copied().unwrap_or(UNK_TOKEN)
    }

    /// Token string for an id.
    pub fn token(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// Corpus frequency recorded for an id (0 for the reserved slots).
    pub fn count(&self, id: usize) -> u64 {
        self.counts[id]
    }

    /// Encode a token stream to ids (unknowns → UNK).
    pub fn encode<'a>(&self, tokens: impl IntoIterator<Item = &'a str>) -> Vec<usize> {
        tokens.into_iter().map(|t| self.id(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vocab {
        let docs = [
            vec!["vampire", "romance", "vampire"],
            vec!["vampire", "action"],
            vec!["romance"],
        ];
        Vocab::build(docs.iter().map(|d| d.iter().copied()), 1, 100)
    }

    #[test]
    fn reserved_slots() {
        let v = sample();
        assert_eq!(v.token(PAD_TOKEN), "<pad>");
        assert_eq!(v.token(UNK_TOKEN), "<unk>");
    }

    #[test]
    fn frequency_ordering() {
        let v = sample();
        // vampire (3) > romance (2) > action (1)
        assert_eq!(v.id("vampire"), 2);
        assert_eq!(v.id("romance"), 3);
        assert_eq!(v.id("action"), 4);
        assert_eq!(v.count(2), 3);
    }

    #[test]
    fn unknown_maps_to_unk() {
        let v = sample();
        assert_eq!(v.id("zebra"), UNK_TOKEN);
    }

    #[test]
    fn min_count_prunes() {
        let docs = [vec!["a", "a", "b"]];
        let v = Vocab::build(docs.iter().map(|d| d.iter().copied()), 2, 100);
        assert_eq!(v.id("a"), 2);
        assert_eq!(v.id("b"), UNK_TOKEN);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn max_size_caps() {
        let docs = [vec!["a", "a", "a", "b", "b", "c"]];
        let v = Vocab::build(docs.iter().map(|d| d.iter().copied()), 1, 4);
        assert_eq!(v.len(), 4); // pad, unk, a, b
        assert_eq!(v.id("c"), UNK_TOKEN);
    }

    #[test]
    fn deterministic_tie_break() {
        let docs = [vec!["zeta", "alpha"]];
        let v1 = Vocab::build(docs.iter().map(|d| d.iter().copied()), 1, 10);
        let v2 = Vocab::build(docs.iter().map(|d| d.iter().copied()), 1, 10);
        assert_eq!(v1.id("alpha"), v2.id("alpha"));
        assert_eq!(v1.id("alpha"), 2); // alphabetical on tie
    }

    #[test]
    fn encode_roundtrip() {
        let v = sample();
        let ids = v.encode(["vampire", "zebra", "romance"]);
        assert_eq!(ids, vec![2, UNK_TOKEN, 3]);
    }
}
