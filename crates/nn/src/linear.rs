//! Fully-connected layer: `y = x·W + b`.

use om_tensor::{init, Rng, Tensor};

use crate::module::HasParams;

/// A dense layer mapping `[batch, in] → [batch, out]`.
pub struct Linear {
    /// Weight `[in, out]`.
    pub weight: Tensor,
    /// Bias `[out]`.
    pub bias: Tensor,
}

impl Linear {
    /// He-initialised dense layer (suits the ReLU stacks of §4.2).
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Linear {
        Linear {
            weight: init::he(in_dim, out_dim, rng).requires_grad(),
            bias: Tensor::zeros(&[out_dim]).requires_grad(),
        }
    }

    /// Xavier-initialised variant (for linear/sigmoid heads).
    pub fn xavier(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Linear {
        Linear {
            weight: init::xavier(in_dim, out_dim, rng).requires_grad(),
            bias: Tensor::zeros(&[out_dim]).requires_grad(),
        }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Affine map.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.matmul(&self.weight).add_row(&self.bias)
    }
}

impl HasParams for Linear {
    fn params(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_tensor::seeded_rng;

    #[test]
    fn forward_shape() {
        let mut rng = seeded_rng(1);
        let l = Linear::new(8, 3, &mut rng);
        let x = Tensor::zeros(&[5, 8]);
        assert_eq!(l.forward(&x).dims(), &[5, 3]);
        assert_eq!(l.in_dim(), 8);
        assert_eq!(l.out_dim(), 3);
    }

    #[test]
    fn zero_weight_outputs_bias() {
        let mut rng = seeded_rng(1);
        let l = Linear::new(2, 2, &mut rng);
        l.weight.data_mut().fill(0.0);
        l.bias.data_mut().copy_from_slice(&[1.5, -2.5]);
        let y = l.forward(&Tensor::ones(&[1, 2]));
        assert_eq!(y.to_vec(), vec![1.5, -2.5]);
    }

    #[test]
    fn gradients_reach_both_params() {
        let mut rng = seeded_rng(2);
        let l = Linear::new(3, 2, &mut rng);
        let x = Tensor::ones(&[4, 3]);
        l.forward(&x).sum_all().backward();
        assert!(l.weight.grad_vec().is_some());
        assert_eq!(l.bias.grad_vec().unwrap(), vec![4.0, 4.0]);
    }

    #[test]
    fn params_exposes_two_tensors() {
        let mut rng = seeded_rng(3);
        let l = Linear::new(4, 4, &mut rng);
        assert_eq!(l.params().len(), 2);
        assert_eq!(l.num_params(), 16 + 4);
    }
}
