//! Deterministic weight initialisers over a seeded RNG.

use rand::RngExt as _;

use crate::{Rng, Tensor};

/// Sample one standard normal value via Box–Muller (the `rand` crate alone
/// is on the dependency allowlist; `rand_distr` is not).
pub fn sample_normal(rng: &mut Rng) -> f32 {
    // Guard against log(0).
    let u1: f32 = rng.random::<f32>().max(1e-12);
    let u2: f32 = rng.random::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// A tensor with entries drawn from `N(0, std²)`.
pub fn normal(dims: &[usize], std: f32, rng: &mut Rng) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| sample_normal(rng) * std).collect();
    Tensor::from_vec(data, dims)
}

/// A tensor with entries drawn uniformly from `[lo, hi)`.
pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.random_range(lo..hi)).collect();
    Tensor::from_vec(data, dims)
}

/// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` weight.
pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(&[fan_in, fan_out], -bound, bound, rng)
}

/// He (Kaiming) normal initialisation, suited to ReLU stacks like the
/// paper's extractors.
pub fn he(fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    normal(&[fan_in, fan_out], std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn deterministic_given_seed() {
        let a = normal(&[4, 4], 1.0, &mut seeded_rng(7));
        let b = normal(&[4, 4], 1.0, &mut seeded_rng(7));
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn different_seeds_differ() {
        let a = normal(&[4, 4], 1.0, &mut seeded_rng(7));
        let b = normal(&[4, 4], 1.0, &mut seeded_rng(8));
        assert_ne!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = seeded_rng(42);
        let t = normal(&[10_000], 2.0, &mut rng);
        let d = t.to_vec();
        let mean: f32 = d.iter().sum::<f32>() / d.len() as f32;
        let var: f32 = d.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / d.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded_rng(1);
        let t = uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.to_vec().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = seeded_rng(1);
        let w = xavier(300, 300, &mut rng);
        let bound = (6.0f32 / 600.0).sqrt();
        assert!(w.to_vec().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn he_shapes() {
        let mut rng = seeded_rng(3);
        let w = he(64, 32, &mut rng);
        assert_eq!(w.dims(), &[64, 32]);
    }
}
