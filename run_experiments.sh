#!/bin/sh
# Regenerate every table and figure of the paper (results/ + stdout logs).
# Usage: ./run_experiments.sh [--trials N | --fast]
set -e
cargo build --release -p om-experiments
for bin in table2 table3 table4 table5 table6 figure4 figure_online case_study ablation_extra; do
  echo "=== running $bin $* ==="
  ./target/release/$bin "$@" | tee "results_${bin}.log"
done
