//! Online cold→warm graduation: interaction buffering and hot-swappable
//! user-arena generations.
//!
//! The paper's evaluation freezes cold-start users at inference time; in
//! production a cold user *accumulates* target-domain interactions while
//! the server runs. This module closes that loop:
//!
//! * [`InteractionStore`] buffers each user's streamed target-domain
//!   review texts in arrival order (the only thing the user tower needs —
//!   item ids and stars ride along for telemetry and figures only);
//! * once a user has [`crate::ServeOptions::warm_after`] interactions
//!   (`OM_SERVE_WARM_AFTER`, default 5), the engine re-encodes *that
//!   user's* row — user tower only, the item arena is immutable between
//!   model versions — into a shadow [`UserArena`] and publishes it
//!   through [`ArenaSwap`];
//! * [`ArenaSwap`] is the `Arc`-swap–style generation pointer: scorers
//!   [`ArenaSwap::pin`] exactly one generation per microbatch, so a batch
//!   can never observe a torn or mixed-generation arena, and the old
//!   generation stays alive until its last in-flight batch drops its pin
//!   (`Arc` reference counting *is* the epoch count — the drain rule
//!   needs no extra machinery).
//!
//! The swap protocol — flip racing batch-close and shutdown, and the
//! deliberately broken variant that frees the old arena at flip time —
//! is model-checked exhaustively in `crates/lint/tests/swap_model.rs`;
//! `tests/online_update.rs` proves a live sequence of swaps bitwise
//! equivalent to a cold rebuild at the same interaction state.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use om_data::types::{ItemId, UserId};

use crate::arena::UserArena;

/// One streamed target-domain interaction: `user` reviewed `item` with
/// `stars`, writing `text`. Only `text` feeds the user tower (through the
/// frozen training vocabulary); the rest is telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct UserEvent {
    /// The interacting user (cold or warm; need not be a scenario user).
    pub user: UserId,
    /// The reviewed target-domain item.
    pub item: ItemId,
    /// The star rating given.
    pub stars: f32,
    /// The review text (the field `OmniMatchConfig::text_field` selects).
    pub text: String,
}

/// What applying one [`UserEvent`] did, as reported by
/// [`crate::ServeEngine::apply_event`] and surfaced through the
/// front-end's stats plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The user the event belonged to.
    pub user: UserId,
    /// Interactions seen from this user so far (this event included).
    pub seen: usize,
    /// Did this event graduate the user cold→warm (first crossing of the
    /// `warm_after` threshold)? Counted in `serve.graduations`.
    pub graduated: bool,
    /// The generation installed by this event, if its row re-encode
    /// published a new arena (`None` below the threshold).
    pub generation: Option<u64>,
}

/// Per-user buffers of streamed review texts, in arrival order. A plain
/// ordered map: deterministic iteration, no hashing (the workspace bans
/// `HashMap` wholesale).
#[derive(Debug, Default)]
pub struct InteractionStore {
    texts: BTreeMap<UserId, Vec<String>>,
    events: u64,
}

impl InteractionStore {
    /// An empty store.
    pub fn new() -> InteractionStore {
        InteractionStore::default()
    }

    /// Append one event's text to its user's buffer; returns the user's
    /// new interaction count.
    pub fn record(&mut self, ev: &UserEvent) -> usize {
        self.events += 1;
        let buf = self.texts.entry(ev.user).or_default();
        buf.push(ev.text.clone());
        buf.len()
    }

    /// Interactions seen from `user` so far.
    pub fn seen(&self, user: UserId) -> usize {
        self.texts.get(&user).map_or(0, Vec::len)
    }

    /// The accumulated review texts of `user`, arrival order.
    pub fn texts(&self, user: UserId) -> &[String] {
        self.texts.get(&user).map_or(&[], Vec::as_slice)
    }

    /// Total events recorded across all users.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Users with at least one buffered interaction, ascending id.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.texts.keys().copied()
    }
}

/// One published user-arena generation: the arena plus its monotone
/// generation number. Readers hold it through an `Arc`, which is exactly
/// what keeps a superseded generation alive until its last in-flight
/// batch drains.
pub struct ArenaGeneration {
    generation: u64,
    arena: UserArena,
}

impl ArenaGeneration {
    /// The monotone generation number (0 at engine build).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The user arena of this generation.
    pub fn arena(&self) -> &UserArena {
        &self.arena
    }
}

/// The hot-swappable generation pointer. `pin` hands a scorer one frozen
/// generation for the duration of a batch; `install` atomically replaces
/// the published generation for *future* pins. The critical section is a
/// pointer clone or a pointer store under a `Mutex` — never an arena
/// build — so neither side can observe a torn arena, and dropping the
/// last pin of a superseded generation frees it (never earlier: the
/// model-checked drain rule).
pub struct ArenaSwap {
    current: Mutex<Arc<ArenaGeneration>>,
}

/// Lock the generation cell, recovering from a poisoned mutex: the cell
/// holds a single `Arc` pointer, which cannot be left in a torn state, so
/// the poison flag carries no information here.
fn cell_lock(cell: &Mutex<Arc<ArenaGeneration>>) -> MutexGuard<'_, Arc<ArenaGeneration>> {
    match cell.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ArenaSwap {
    /// Publish `arena` as generation 0.
    pub fn new(arena: UserArena) -> ArenaSwap {
        ArenaSwap {
            current: Mutex::new(Arc::new(ArenaGeneration { generation: 0, arena })),
        }
    }

    /// Pin the current generation: the returned handle keeps *that*
    /// arena alive and unchanged for as long as it is held, regardless of
    /// how many installs happen meanwhile. One pin per microbatch is the
    /// no-mixed-generation rule.
    pub fn pin(&self) -> Arc<ArenaGeneration> {
        Arc::clone(&cell_lock(&self.current))
    }

    /// Atomically publish `arena` as the next generation and return its
    /// number. In-flight pins of the previous generation stay valid; the
    /// superseded arena is freed when the last of them drops.
    pub fn install(&self, arena: UserArena) -> u64 {
        let mut cur = cell_lock(&self.current);
        let generation = cur.generation + 1;
        *cur = Arc::new(ArenaGeneration { generation, arena });
        generation
    }

    /// The currently published generation number.
    pub fn generation(&self) -> u64 {
        cell_lock(&self.current).generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(ids: &[u32], dim: usize) -> UserArena {
        let data = vec![0.5f32; ids.len() * dim];
        UserArena::from_raw(ids.iter().map(|&u| UserId(u)).collect(), data, dim)
    }

    #[test]
    fn store_buffers_per_user_in_arrival_order() {
        let mut store = InteractionStore::new();
        let ev = |u: u32, text: &str| UserEvent {
            user: UserId(u),
            item: ItemId(0),
            stars: 5.0,
            text: text.to_string(),
        };
        assert_eq!(store.record(&ev(1, "a")), 1);
        assert_eq!(store.record(&ev(2, "x")), 1);
        assert_eq!(store.record(&ev(1, "b")), 2);
        assert_eq!(store.seen(UserId(1)), 2);
        assert_eq!(store.texts(UserId(1)), &["a".to_string(), "b".to_string()]);
        assert_eq!(store.seen(UserId(9)), 0);
        assert!(store.texts(UserId(9)).is_empty());
        assert_eq!(store.events(), 3);
        assert_eq!(store.users().collect::<Vec<_>>(), vec![UserId(1), UserId(2)]);
    }

    #[test]
    fn pins_outlive_installs_and_generations_are_monotone() {
        let swap = ArenaSwap::new(arena(&[1, 2], 3));
        assert_eq!(swap.generation(), 0);
        let pinned = swap.pin();
        assert_eq!(pinned.generation(), 0);
        assert_eq!(swap.install(arena(&[1, 2, 3], 3)), 1);
        assert_eq!(swap.install(arena(&[1, 2, 3, 4], 3)), 2);
        // The old pin still reads the generation it pinned...
        assert_eq!(pinned.generation(), 0);
        assert_eq!(pinned.arena().len(), 2);
        // ...while new pins see the latest install.
        assert_eq!(swap.pin().generation(), 2);
        assert_eq!(swap.pin().arena().len(), 4);
    }
}
