//! PTUPCDR — Personalized Transfer of User Preferences for Cross-Domain
//! Recommendation (Zhu et al. 2022): instead of EMCDR's single global
//! mapping, a *meta-network* conditioned on each user's source interaction
//! history produces a personalised bridge. Here the characteristic encoder
//! pools the factors (and rating deviations) of the user's source items;
//! the meta-network consumes `[user factor ⊕ pooled history]` and emits
//! the user's target-space factor directly.

use om_data::split::CrossDomainScenario;
use om_data::types::{Interaction, ItemId, UserId};
use om_nn::{mse_loss, Adam, HasParams, Mlp, Optimizer as _};
use om_tensor::{seeded_rng, Tensor};

use crate::mf::{MatrixFactorization, MfConfig};
use crate::{clamp_stars, Recommender};

/// Trained PTUPCDR model.
pub struct PTUPCDR {
    mf_target: MatrixFactorization,
    meta: Mlp,
    /// Cached characteristic vectors (`[user factor ⊕ pooled history]`).
    characteristics: std::collections::BTreeMap<UserId, Vec<f32>>,
    seed: u64,
}

impl PTUPCDR {
    /// Build the characteristic vector of a user from their source history.
    fn characteristic(
        mf_source: &MatrixFactorization,
        scenario: &CrossDomainScenario,
        user: UserId,
    ) -> Option<Vec<f32>> {
        let uf = mf_source.user_factor(user)?;
        let dim = uf.len();
        let mut pooled = vec![0.0f32; dim];
        let mut n = 0usize;
        for it in scenario.source.user_records(user) {
            if let Some(f) = mf_source.item_factor(it.item) {
                // rating-weighted pooling: deviations from the mid-scale
                // emphasise strongly-felt items, the role attention plays
                // in the original meta-network
                let w = (it.rating.value() - 3.0) / 2.0;
                for (p, &x) in pooled.iter_mut().zip(f) {
                    *p += w * x;
                }
                n += 1;
            }
        }
        if n > 0 {
            for p in pooled.iter_mut() {
                *p /= n as f32;
            }
        }
        let mut c = uf.to_vec();
        c.extend(pooled);
        Some(c)
    }

    /// Fit: per-domain MF, then the meta-network on overlapping users.
    pub fn fit(scenario: &CrossDomainScenario, seed: u64) -> PTUPCDR {
        let mut rng = seeded_rng(seed);
        let src_refs: Vec<&Interaction> = scenario.source.interactions().iter().collect();
        let tgt_refs: Vec<&Interaction> = scenario.target_train.interactions().iter().collect();
        let mf_source = MatrixFactorization::fit(&src_refs, MfConfig::default(), &mut rng);
        let mf_target = MatrixFactorization::fit(&tgt_refs, MfConfig::default(), &mut rng);
        let dim = mf_source.dim();

        let mut xs: Vec<f32> = Vec::new();
        let mut ys: Vec<f32> = Vec::new();
        let mut n = 0usize;
        for &u in &scenario.train_users {
            if let (Some(c), Some(t)) = (
                Self::characteristic(&mf_source, scenario, u),
                mf_target.user_factor(u),
            ) {
                xs.extend(c);
                ys.extend_from_slice(t);
                n += 1;
            }
        }
        let meta = Mlp::new(&[2 * dim, 2 * dim, dim], 0.0, &mut rng);
        if n >= 2 {
            let x = Tensor::from_vec(xs, &[n, 2 * dim]);
            let mut opt = Adam::new(meta.params(), 0.01);
            for _ in 0..300 {
                let pred = meta.forward(&x, true, &mut rng);
                let loss = mse_loss(&pred, &ys);
                loss.backward();
                opt.step();
                opt.zero_grad();
            }
        }

        // Cache characteristics for every scenario user with source data.
        let mut characteristics = std::collections::BTreeMap::new();
        for &u in scenario
            .train_users
            .iter()
            .chain(&scenario.valid_users)
            .chain(&scenario.test_users)
        {
            if let Some(c) = Self::characteristic(&mf_source, scenario, u) {
                characteristics.insert(u, c);
            }
        }

        PTUPCDR {
            mf_target,
            meta,
            characteristics,
            seed,
        }
    }

    /// The personalised bridge output for a user (their predicted
    /// target-space factor).
    pub fn bridged_factor(&self, user: UserId) -> Option<Vec<f32>> {
        let c = self.characteristics.get(&user)?;
        let x = Tensor::from_vec(c.clone(), &[1, c.len()]);
        let _guard = om_tensor::no_grad();
        let mut rng = seeded_rng(self.seed);
        Some(self.meta.forward(&x, false, &mut rng).to_vec())
    }
}

impl Recommender for PTUPCDR {
    fn name(&self) -> &'static str {
        "PTUPCDR"
    }

    fn predict(&self, user: UserId, item: ItemId) -> f32 {
        let raw = if self.mf_target.user_factor(user).is_some() {
            self.mf_target.raw_predict(user, item)
        } else {
            match self.bridged_factor(user) {
                Some(f) => self.mf_target.predict_with_user_factor(&f, item),
                None => self
                    .mf_target
                    .predict_with_user_factor(&vec![0.0; self.mf_target.dim()], item),
            }
        };
        clamp_stars(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{SplitConfig, SynthConfig, SynthWorld};

    fn scenario() -> CrossDomainScenario {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        world.scenario("Books", "Movies", SplitConfig::default())
    }

    #[test]
    fn characteristics_cover_cold_users() {
        let sc = scenario();
        let m = PTUPCDR::fit(&sc, 1);
        for &u in sc.test_users.iter().take(5) {
            assert!(m.bridged_factor(u).is_some());
        }
    }

    #[test]
    fn evaluation_is_finite() {
        let sc = scenario();
        let m = PTUPCDR::fit(&sc, 1);
        let e = m.evaluate(&sc.test_pairs());
        assert!(e.rmse.is_finite() && e.rmse < 3.0, "{e:?}");
    }

    #[test]
    fn bridge_is_personalised() {
        let sc = scenario();
        let m = PTUPCDR::fit(&sc, 2);
        let u1 = sc.test_users[0];
        let u2 = *sc.test_users.last().unwrap();
        let f1 = m.bridged_factor(u1).unwrap();
        let f2 = m.bridged_factor(u2).unwrap();
        assert_ne!(f1, f2, "different users should bridge differently");
    }
}
