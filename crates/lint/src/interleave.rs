//! An explicit-state interleaving explorer — a minimal, dependency-free
//! stand-in for `loom`, used to model-check the tensor runtime's
//! dispatch/join protocol (`crates/tensor/src/runtime.rs`).
//!
//! A [`Model`] describes a small concurrent system as a value: which
//! logical threads can take a step, what the successor state of each step
//! is, which states are acceptable endpoints, and an invariant that must
//! hold everywhere. [`explore`] then enumerates **every** reachable state
//! by exhaustive DFS with memoisation, reporting the first invariant
//! violation or stuck non-final state (deadlock / lost wakeup) together
//! with the offending state.
//!
//! The caveat relative to loom: steps here are the *model's* atomic
//! units, so fidelity depends on choosing them honestly — anything the
//! real code does outside a mutex must be split into separate steps, and
//! only mutex-protected sequences (or genuinely atomic operations, e.g.
//! `Condvar::wait`'s release-and-sleep) may be fused into one step. The
//! worker-pool model in `tests/pool_model.rs` documents its step
//! granularity site by site; its deliberately broken variant shows the
//! explorer catching the classic check-then-sleep lost-wakeup bug.

use std::collections::BTreeSet;

/// A finite-state concurrent system under exploration.
///
/// `Ord` (not `Hash`) keys the visited set so state enumeration itself is
/// deterministic.
pub trait Model: Clone + Ord + std::fmt::Debug {
    /// Logical thread ids that can take a step in this state. An empty
    /// answer makes the state terminal: acceptable if
    /// [`Model::is_terminal_ok`], a deadlock otherwise.
    fn runnable(&self) -> Vec<usize>;

    /// The successor state after `tid` takes its one atomic step. Called
    /// only with ids returned by [`Model::runnable`].
    fn step(&self, tid: usize) -> Self;

    /// Whether a state with no runnable thread is an acceptable endpoint.
    fn is_terminal_ok(&self) -> bool;

    /// A property that must hold in *every* reachable state.
    fn invariant(&self) -> Result<(), String> {
        Ok(())
    }
}

/// Exploration statistics for a fully verified model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (edges, counting re-entries to visited states).
    pub transitions: usize,
}

/// Exhaustively explore every interleaving of `init`.
///
/// Returns statistics if all reachable states satisfy the invariant and
/// every terminal state is acceptable; otherwise an error describing the
/// failure and the state it occurred in.
pub fn explore<M: Model>(init: M) -> Result<Stats, String> {
    let mut visited: BTreeSet<M> = BTreeSet::new();
    let mut stack = vec![init];
    let mut transitions = 0usize;
    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        state
            .invariant()
            .map_err(|e| format!("invariant violated: {e}\nin state: {state:?}"))?;
        let runnable = state.runnable();
        if runnable.is_empty() {
            if !state.is_terminal_ok() {
                return Err(format!(
                    "deadlock: no runnable thread in non-final state: {state:?}"
                ));
            }
            continue;
        }
        for tid in runnable {
            transitions += 1;
            stack.push(state.step(tid));
        }
    }
    Ok(Stats {
        states: visited.len(),
        transitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a shared counter twice through a
    /// non-atomic read-modify-write; the classic lost-update race. The
    /// explorer must find the interleaving where the final count is short.
    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct RmwRace {
        counter: u8,
        // Per thread: (increments left, staged read if mid-RMW).
        threads: [(u8, Option<u8>); 2],
        atomic: bool,
    }

    impl Model for RmwRace {
        fn runnable(&self) -> Vec<usize> {
            (0..2)
                .filter(|&t| self.threads[t].0 > 0 || self.threads[t].1.is_some())
                .collect()
        }

        fn step(&self, tid: usize) -> Self {
            let mut s = self.clone();
            let (left, staged) = &mut s.threads[tid];
            if s.atomic {
                s.counter += 1;
                *left -= 1;
            } else {
                match staged.take() {
                    None => *staged = Some(s.counter), // read
                    Some(v) => {
                        s.counter = v + 1; // write stale value back
                        *left -= 1;
                    }
                }
            }
            s
        }

        fn is_terminal_ok(&self) -> bool {
            self.counter == 4
        }
    }

    fn rmw(atomic: bool) -> RmwRace {
        RmwRace {
            counter: 0,
            threads: [(2, None), (2, None)],
            atomic,
        }
    }

    #[test]
    fn atomic_increments_verify() {
        let stats = explore(rmw(true)).expect("atomic counter must verify");
        assert!(stats.states > 4);
    }

    #[test]
    fn lost_update_race_is_found() {
        let err = explore(rmw(false)).expect_err("non-atomic RMW must fail");
        assert!(err.contains("no runnable thread"), "{err}");
    }

    /// Invariant violations are reported with the state.
    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct BadInvariant(u8);

    impl Model for BadInvariant {
        fn runnable(&self) -> Vec<usize> {
            if self.0 < 3 { vec![0] } else { vec![] }
        }
        fn step(&self, _tid: usize) -> Self {
            BadInvariant(self.0 + 1)
        }
        fn is_terminal_ok(&self) -> bool {
            true
        }
        fn invariant(&self) -> Result<(), String> {
            if self.0 == 2 {
                Err("hit the forbidden value 2".into())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn invariant_violations_are_reported() {
        let err = explore(BadInvariant(0)).expect_err("must violate");
        assert!(err.contains("forbidden value 2"), "{err}");
    }
}
