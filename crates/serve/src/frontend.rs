//! Threaded serving front-end: a bounded queue feeding the microbatcher.
//!
//! The engines and the [`crate::Microbatcher`] are synchronous and
//! caller-clocked; this module adds the missing production shape — many
//! request producers, one scoring consumer — without any new dependency:
//!
//! * producers hold a cloneable [`FrontendHandle`] over a **bounded**
//!   `std::sync::mpsc::sync_channel`; [`FrontendHandle::try_send`] never
//!   blocks and never panics — a full queue is an explicit, typed
//!   [`SubmitError::QueueFull`] rejection (admission control: shed load at
//!   the door instead of growing an unbounded queue until the process
//!   dies);
//! * one worker thread owns the scorer (engines hold `Rc`-based tensors
//!   and are not `Send`, so the worker *builds* the scorer itself from a
//!   `Send` factory closure), pumps arrivals into a microbatcher, and
//!   flushes on size or deadline exactly like the synchronous loop;
//! * [`Frontend::shutdown`] closes the admission gate, then enqueues a
//!   stop marker **behind** every accepted request, so in-flight work
//!   drains — every accepted request gets a response before the worker
//!   exits — and returns the tallies.
//!
//! The shutdown protocol needs the gate, not just the marker: without it
//! a producer's `try_send` can race `shutdown` and land a request *after*
//! the stop marker, where the worker's final sweep may already have run —
//! an accepted-but-never-served request. [`FrontendHandle::try_send`]
//! therefore sends while holding a shared `closed` lock that `shutdown`
//! flips before it enqueues the marker; channel FIFO then guarantees
//! every accepted request precedes the marker. Every interleaving of this
//! protocol is model-checked in `crates/lint/tests/frontend_model.rs`.
//!
//! Backpressure, then, is the queue bound itself: a slow consumer can
//! hold at most `queue_cap` requests plus one in-progress microbatch in
//! memory, and everything beyond that is rejected at submit time where
//! the caller can retry, degrade, or shed. `tests/frontend_backpressure.rs`
//! pins the queue behaviours.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use crate::batcher::Microbatcher;
use crate::engine::{Request, Response, ServeEngine};
use crate::error::ServeError;
use crate::shard::ShardedEngine;

/// Anything that can score a microbatch of requests. Both engines
/// qualify; tests substitute stubs to pin queue behaviour without a
/// model.
pub trait BatchScorer {
    /// Score a flushed microbatch, one [`Response`] per request, in
    /// request order. A scoring failure degrades that flush, not the
    /// worker: the front-end counts it and keeps draining.
    fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError>;
}

impl BatchScorer for ServeEngine {
    fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        ServeEngine::serve_batch(self, reqs)
    }
}

impl BatchScorer for ShardedEngine {
    fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        ShardedEngine::serve_batch(self, reqs)
    }
}

/// Front-end knobs; [`FrontendOptions::from_env`] also reads
/// `OM_SERVE_QUEUE` for the queue bound.
#[derive(Debug, Clone)]
pub struct FrontendOptions {
    /// Bounded queue capacity (`OM_SERVE_QUEUE`, default 256). Submits
    /// beyond this are rejected, not blocked.
    pub queue_cap: usize,
    /// Microbatch flush size (see [`crate::ServeOptions::batch`]).
    pub batch: usize,
    /// Max queueing delay before a partial batch flushes, microseconds.
    pub wait_us: u64,
}

impl Default for FrontendOptions {
    fn default() -> FrontendOptions {
        FrontendOptions { queue_cap: 256, batch: 8, wait_us: 2_000 }
    }
}

impl FrontendOptions {
    /// Batch/wait from `opts`, queue bound from `OM_SERVE_QUEUE` (default
    /// 256; unparsable or zero values fall back).
    pub fn from_serve(opts: &crate::ServeOptions) -> FrontendOptions {
        let queue_cap = std::env::var("OM_SERVE_QUEUE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&v| v > 0)
            .unwrap_or(FrontendOptions::default().queue_cap);
        FrontendOptions { queue_cap, batch: opts.batch, wait_us: opts.wait_us }
    }

    /// Defaults overridden by the `OM_SERVE_*` environment.
    pub fn from_env() -> FrontendOptions {
        FrontendOptions::from_serve(&crate::ServeOptions::from_env())
    }
}

/// Why a submit was not accepted. Both cases are the caller's signal to
/// back off; neither ever panics or blocks the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: the bounded queue is at capacity.
    QueueFull {
        /// The configured bound the queue is at.
        capacity: usize,
    },
    /// The worker has shut down; no further requests will be scored.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "serve queue full (capacity {capacity})")
            }
            SubmitError::Shutdown => write!(f, "serve front-end is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// End-of-run tallies from [`Frontend::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendStats {
    /// Requests scored (every accepted request is served, even on
    /// shutdown).
    pub served: u64,
    /// Microbatch flushes executed.
    pub flushes: u64,
    /// Submits rejected by admission control.
    pub rejected: u64,
    /// Flushes whose scorer returned an error (those requests got no
    /// response; the worker kept draining).
    pub scorer_errors: u64,
}

enum Msg {
    Req(Request),
    Stop,
}

/// Lock the admission gate, recovering from a poisoned mutex: the gate
/// holds a plain `bool`, which cannot be left in a torn state, so the
/// poison flag carries no information here.
fn gate_lock(gate: &Mutex<bool>) -> MutexGuard<'_, bool> {
    match gate.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A producer's handle: clone freely, submit from any thread.
#[derive(Clone)]
pub struct FrontendHandle {
    tx: SyncSender<Msg>,
    capacity: usize,
    rejected: Arc<AtomicU64>,
    /// The admission gate: once `shutdown` sets it, no further request
    /// can enter the channel, so the stop marker is provably last.
    closed: Arc<Mutex<bool>>,
}

impl FrontendHandle {
    /// Try to enqueue `req`. Never blocks: a full queue or a stopped
    /// worker returns a typed error immediately. The send happens under
    /// the admission gate so it cannot land behind the stop marker
    /// (`try_send` on a bounded channel with free space never blocks, so
    /// the critical section is a check plus an enqueue).
    pub fn try_send(&self, req: Request) -> Result<(), SubmitError> {
        let closed = gate_lock(&self.closed);
        if *closed {
            return Err(SubmitError::Shutdown);
        }
        match self.tx.try_send(Msg::Req(req)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                om_obs::metrics::counter("serve.frontend.rejected").add(1);
                Err(SubmitError::QueueFull { capacity: self.capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Shutdown),
        }
    }

    /// Submits rejected so far (shared across clones).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// The worker end: owns the scoring thread; [`Frontend::shutdown`] drains
/// and joins it.
pub struct Frontend {
    handle: FrontendHandle,
    worker: std::thread::JoinHandle<(u64, u64, u64)>,
}

impl Frontend {
    /// Spawn the consumer thread. `factory` runs *on the worker* to build
    /// the scorer there (engines are not `Send`); `responses` receives
    /// every scored [`Response`] in flush order. Errors only if the OS
    /// refuses the thread.
    // om-lint: allow(thread-spawn) — this *is* the sanctioned spawn point:
    // the one long-lived consumer thread of the serving front-end.
    pub fn spawn<S, F>(
        factory: F,
        opts: FrontendOptions,
        responses: Sender<Response>,
    ) -> Result<Frontend, ServeError>
    where
        S: BatchScorer,
        F: FnOnce() -> S + Send + 'static,
    {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Msg>(opts.queue_cap.max(1));
        let batch = opts.batch.max(1);
        let wait_us = opts.wait_us;
        let worker = std::thread::Builder::new()
            .name("om-serve-frontend".into())
            // om-lint: allow(thread-spawn) — the front-end consumer is the
            // one long-lived thread the serving shape requires; scoring
            // inside it still fans out over the om_tensor::runtime pool.
            .spawn(move || {
                let scorer = factory();
                let mut batcher = Microbatcher::new(batch, wait_us);
                // All deadlines are relative to the process clock anchor,
                // so the sanctioned monotonic clock suffices.
                let now_us = || om_obs::clock::now_ns() / 1_000;
                let mut served: u64 = 0;
                let mut flushes: u64 = 0;
                let mut scorer_errors: u64 = 0;
                let mut flush = |reqs: Vec<Request>| {
                    flushes += 1;
                    match scorer.serve_batch(&reqs) {
                        Ok(out) => {
                            served += out.len() as u64;
                            for resp in out {
                                // A dropped receiver just discards
                                // responses; the worker still drains so
                                // shutdown stays orderly.
                                let _ = responses.send(resp);
                            }
                        }
                        Err(err) => {
                            scorer_errors += 1;
                            om_obs::error!(
                                "serve: front-end flush of {} request(s) failed: {err}",
                                reqs.len()
                            );
                            om_obs::metrics::counter("serve.frontend.scorer_errors").add(1);
                        }
                    }
                };
                loop {
                    let timeout = if batcher.pending() > 0 {
                        let deadline = batcher.oldest_us().saturating_add(wait_us);
                        Duration::from_micros(deadline.saturating_sub(now_us()))
                    } else {
                        // Idle: nothing is pending, so nothing can time
                        // out; wake occasionally to stay responsive to a
                        // dropped producer side.
                        Duration::from_millis(50)
                    };
                    match rx.recv_timeout(timeout) {
                        Ok(Msg::Req(req)) => {
                            if let Some(batch) = batcher.submit(req, now_us()) {
                                flush(batch);
                            }
                        }
                        Ok(Msg::Stop) => break,
                        Err(RecvTimeoutError::Timeout) => {
                            if let Some(batch) = batcher.poll(now_us()) {
                                flush(batch);
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                // The admission gate means nothing can follow the stop
                // marker; this sweep is belt-and-braces for the
                // disconnected-exit path.
                while let Ok(Msg::Req(req)) = rx.try_recv() {
                    if let Some(batch) = batcher.submit(req, now_us()) {
                        flush(batch);
                    }
                }
                if let Some(rest) = batcher.drain() {
                    flush(rest);
                }
                om_obs::metrics::counter("serve.frontend.served").add(served);
                (served, flushes, scorer_errors)
            })
            .map_err(|err| ServeError::WorkerSpawn(err.to_string()))?;
        let handle = FrontendHandle {
            tx,
            capacity: opts.queue_cap.max(1),
            rejected: Arc::new(AtomicU64::new(0)),
            closed: Arc::new(Mutex::new(false)),
        };
        Ok(Frontend { handle, worker })
    }

    /// A producer handle (clone per producer thread).
    pub fn handle(&self) -> FrontendHandle {
        self.handle.clone()
    }

    /// Stop accepting work, drain everything already accepted, join the
    /// worker, and return the tallies. Closing the admission gate first
    /// and *then* enqueueing the stop marker guarantees the marker queues
    /// behind every accepted request — none are dropped. Errors only if
    /// the worker itself panicked.
    pub fn shutdown(self) -> Result<FrontendStats, ServeError> {
        {
            let mut closed = gate_lock(&self.handle.closed);
            *closed = true;
        }
        // A blocking send: waits for queue space behind the accepted
        // backlog. If the worker already exited (disconnected), join
        // anyway.
        let _ = self.handle.tx.send(Msg::Stop);
        let rejected = self.handle.rejected();
        let (served, flushes, scorer_errors) =
            self.worker.join().map_err(|_| ServeError::WorkerPanicked)?;
        Ok(FrontendStats { served, flushes, rejected, scorer_errors })
    }
}
