//! Typed serving errors — the panic-freedom contract of the hot path.
//!
//! om-lint's `panic-freedom` pass bans `unwrap`/`expect`, panicking macros
//! and direct indexing in `engine.rs`/`shard.rs`/`frontend.rs`/
//! `batcher.rs`: a panic there kills the worker thread and with it every
//! queued request. Every fallible step in those modules returns a
//! [`ServeError`] instead, so one malformed request (or a scorer bug)
//! degrades exactly one response and the worker keeps draining.

use std::fmt;

/// Why scoring or the front-end failed, without panicking the worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The item arena is empty (or zero-width) — there is no catalogue to
    /// rank.
    EmptyArena,
    /// The scoring forward produced a different number of rows than the
    /// batch requested — a model/arena shape mismatch.
    ScoreShape {
        /// Rows the batch expected.
        expected: usize,
        /// Rows the forward produced.
        got: usize,
    },
    /// The OS refused to spawn the front-end worker thread.
    WorkerSpawn(String),
    /// The front-end worker panicked before reporting its tallies — a bug
    /// by definition, surfaced as an error so shutdown still returns.
    WorkerPanicked,
    /// An `OM_SERVE_*` environment variable was set to a degenerate value
    /// (unparsable, or zero where the knob needs at least 1). Failing fast
    /// at parse time beats the alternative: `OM_SERVE_BATCH=0` or
    /// `OM_SERVE_QUEUE=0` would otherwise panic or livelock deep inside
    /// the batcher/front-end, long after the misconfiguration happened.
    BadEnv {
        /// The variable that was set.
        var: &'static str,
        /// The rejected value, verbatim.
        value: String,
    },
    /// An online user-row update produced a feature row whose width does
    /// not match the live arena — a model/arena generation mismatch; the
    /// update is refused and the current generation keeps serving.
    UpdateDim {
        /// Row width of the live user arena.
        arena: usize,
        /// Row width the re-encode produced.
        row: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::EmptyArena => write!(f, "serve: empty item arena — nothing to rank"),
            ServeError::ScoreShape { expected, got } => write!(
                f,
                "serve: scoring returned {got} row(s) for a batch of {expected}"
            ),
            ServeError::WorkerSpawn(err) => {
                write!(f, "serve: cannot spawn front-end worker: {err}")
            }
            ServeError::WorkerPanicked => {
                write!(f, "serve: front-end worker panicked before reporting stats")
            }
            ServeError::BadEnv { var, value } => write!(
                f,
                "serve: {var}={value:?} is not a positive integer — unset it \
                 for the default, or set a value of at least 1"
            ),
            ServeError::UpdateDim { arena, row } => write!(
                f,
                "serve: online update produced a row of width {row} against a \
                 user arena of width {arena}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}
