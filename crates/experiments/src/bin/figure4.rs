//! Regenerates **Figure 4**: sensitivity of Movies→Music (Amazon preset)
//! to the loss weights — (a) RMSE/MAE vs α ∈ {0.1..0.7} with β = 0.1 and
//! (b) vs β ∈ {0.1..0.7} with α = 0.2. The paper's point is *robustness*:
//! the curves stay inside a narrow band.

use om_data::{SynthConfig, SynthWorld};
use om_experiments::paper;
use om_experiments::report::Table;
use om_experiments::runner::{cli_trials, run_trials, Method};
use omnimatch_core::OmniMatchConfig;

fn sweep(
    world: &SynthWorld,
    trials: usize,
    label: &str,
    make: impl Fn(f32) -> OmniMatchConfig,
) -> Table {
    let mut table = Table::new(
        format!("Figure 4 — {label} sweep (Movies -> Music)"),
        &[label, "RMSE", "MAE"],
    );
    for &v in &paper::FIGURE4_VALUES {
        om_obs::info!("{label} = {v}…");
        let r = run_trials(world, "Movies", "Music", &Method::Ours(make(v)), trials, 1.0);
        table.row(vec![
            format!("{v:.1}"),
            format!("{:.3}", r.rmse.mean),
            format!("{:.3}", r.mae.mean),
        ]);
    }
    table
}

fn main() {
    let _run = om_obs::run_scope("figure4");
    let trials = cli_trials(1);
    om_obs::manifest_set("experiment.trials", (trials as u64).into());
    let world = SynthWorld::generate(SynthConfig::amazon(), &["Books", "Movies", "Music"]);

    // (a) sweep α with β fixed at 0.1 (§5.8)
    let alpha_table = sweep(&world, trials, "alpha", |a| OmniMatchConfig {
        alpha: a,
        beta: 0.1,
        ..OmniMatchConfig::default()
    });
    println!("{}", alpha_table.render());
    alpha_table.write_tsv("figure4_alpha.tsv").expect("write TSV");

    // (b) sweep β with α fixed at 0.2
    let beta_table = sweep(&world, trials, "beta", |b| OmniMatchConfig {
        alpha: 0.2,
        beta: b,
        ..OmniMatchConfig::default()
    });
    println!("{}", beta_table.render());
    beta_table.write_tsv("figure4_beta.tsv").expect("write TSV");

    println!(
        "paper bands: RMSE {:?}, MAE {:?} — the claim is robustness across the sweep",
        paper::FIGURE4_RMSE_BAND,
        paper::FIGURE4_MAE_BAND
    );
    println!("TSVs written to results/figure4_alpha.tsv and results/figure4_beta.tsv");
}
