//! OmniMatch hyper-parameters and ablation switches.
//!
//! Defaults follow §5.4 where the paper states a value (kernel widths
//! (3, 4, 5), Adadelta lr 0.02 / ρ 0.95, dropout 0.4, batch 64, τ 0.07,
//! α 0.2 / β 0.1 from the §5.8 grid search). Dimensions are scaled down
//! from the paper's GPU configuration (300-d fastText, 200 filters) to the
//! CPU regime of this reproduction — the substitution table in DESIGN.md
//! explains why the result *shape* is preserved.

use om_data::types::TextField;

/// Which backbone extracts text features (Table 5's `OmniMatch-BERT` row
/// swaps the CNN for a transformer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractorKind {
    /// Multi-width TextCNN (paper default, §4.2).
    TextCnn,
    /// Compact transformer encoder (the `OmniMatch-BERT` ablation).
    Transformer,
}

/// How cold-start users obtain a target-domain document at evaluation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuxMode {
    /// Algorithm 1: auxiliary reviews from like-minded users (default).
    Generated,
    /// `w/o Aux Reviews` ablation: reuse the user's *source* document as
    /// the target document (no target-domain information is synthesised).
    SourceFallback,
}

/// Full model + training configuration.
#[derive(Debug, Clone)]
pub struct OmniMatchConfig {
    // ------------------------------------------------------------- text
    /// Review text field fed to the extractors (paper default: summary).
    pub text_field: TextField,
    /// Fixed token length of every encoded document.
    pub doc_len: usize,
    /// Maximum vocabulary size (incl. PAD/UNK).
    pub vocab_size: usize,
    /// Minimum corpus frequency for a vocabulary word.
    pub min_count: u64,
    /// Warm-start the embedding table with subword-hash vectors (stands in
    /// for the paper's pretrained fastText, see DESIGN.md).
    pub pretrain_embeddings: bool,

    // ------------------------------------------------------------ model
    /// Word-embedding width (paper: 300-d fastText; scaled down).
    pub emb_dim: usize,
    /// Convolution kernel widths (paper: (3, 4, 5)).
    pub kernel_widths: Vec<usize>,
    /// Filters per kernel width (paper: 200; scaled down).
    pub filters: usize,
    /// Width of the domain-invariant user representation.
    pub invariant_dim: usize,
    /// Width of the domain-specific user representation.
    pub specific_dim: usize,
    /// Width of the item representation.
    pub item_dim: usize,
    /// Output width of the contrastive projection head (paper: 128).
    pub proj_dim: usize,
    /// Dropout rate after each linear layer (paper: 0.4).
    pub dropout: f32,

    // --------------------------------------------------------- training
    /// Mini-batch size (paper: 64).
    pub batch_size: usize,
    /// Training epochs (paper: 15 on an A100; scaled for CPU).
    pub epochs: usize,
    /// Adadelta learning rate. The paper reports 0.02 at A100 scale with
    /// pretrained 300-d embeddings; at this reproduction's reduced scale
    /// Zeiler's original lr = 1.0 is required for convergence within the
    /// epoch budget (DESIGN.md).
    pub lr: f32,
    /// Adadelta ρ (paper: 0.95).
    pub rho: f32,
    /// Weight α of the supervised contrastive loss (Eq. 21; §5.8: 0.2).
    pub alpha: f32,
    /// Weight β of the domain classification loss (Eq. 21; §5.8: 0.1).
    pub beta: f32,
    /// Contrastive temperature τ (paper: 0.07).
    pub temperature: f32,
    /// Gradient-reversal strength λ (§4.4).
    pub grl_lambda: f32,
    /// Seed for parameter init, shuffling and dropout.
    pub seed: u64,
    /// Probability of swapping a training user's real target document for
    /// their Algorithm 1 auxiliary document within a batch. Keeps the
    /// rating classifier consistent between training (real reviews) and
    /// cold-start serving (auxiliary reviews).
    pub aux_augment_prob: f32,
    /// Include cold-start users' (source, auxiliary-target) feature pairs
    /// in the alignment losses — §4.1: "the auxiliary documents generated
    /// are utilized to construct target representations of cold-start
    /// users, which are then employed as input in the Contrastive
    /// Representation Learning Module".
    pub align_cold_users: bool,

    // -------------------------------------------------------- ablations
    /// Enable the Contrastive Representation Learning Module (§4.3).
    pub use_scl: bool,
    /// Enable the Domain Adversarial Training Module (§4.4).
    pub use_da: bool,
    /// Auxiliary-document strategy for cold-start users (§4.1).
    pub aux_mode: AuxMode,
    /// Feature-extractor backbone.
    pub extractor: ExtractorKind,
}

impl Default for OmniMatchConfig {
    fn default() -> Self {
        OmniMatchConfig {
            text_field: TextField::Summary,
            doc_len: 48,
            vocab_size: 4000,
            min_count: 1,
            pretrain_embeddings: true,
            emb_dim: 24,
            kernel_widths: vec![3, 4, 5],
            filters: 24,
            invariant_dim: 32,
            specific_dim: 32,
            item_dim: 32,
            proj_dim: 32,
            dropout: 0.4,
            batch_size: 64,
            epochs: 12,
            lr: 1.0,
            rho: 0.95,
            alpha: 0.2,
            beta: 0.1,
            temperature: 0.07,
            grl_lambda: 1.0,
            seed: 1,
            aux_augment_prob: 0.5,
            align_cold_users: true,
            use_scl: true,
            use_da: true,
            aux_mode: AuxMode::Generated,
            extractor: ExtractorKind::TextCnn,
        }
    }
}

impl OmniMatchConfig {
    /// A reduced configuration for unit tests and the quickstart example:
    /// small dims, few epochs, still the full architecture.
    pub fn fast() -> OmniMatchConfig {
        OmniMatchConfig {
            doc_len: 16,
            vocab_size: 1500,
            emb_dim: 12,
            filters: 8,
            invariant_dim: 12,
            specific_dim: 12,
            item_dim: 12,
            proj_dim: 12,
            epochs: 3,
            batch_size: 32,
            ..OmniMatchConfig::default()
        }
    }

    /// Builder-style seed override (trials vary this).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The ablation row `w/o SCL` of Table 5.
    pub fn without_scl(mut self) -> Self {
        self.use_scl = false;
        self
    }

    /// The ablation row `w/o DA` of Table 5.
    pub fn without_da(mut self) -> Self {
        self.use_da = false;
        self
    }

    /// The ablation row `w/o Aux Reviews` of Table 5.
    pub fn without_aux_reviews(mut self) -> Self {
        self.aux_mode = AuxMode::SourceFallback;
        self
    }

    /// The ablation row `OmniMatch-ReviewText` of Table 5.
    pub fn with_full_review_text(mut self) -> Self {
        self.text_field = TextField::FullText;
        // full reviews are longer; give the extractor room
        self.doc_len *= 2;
        self
    }

    /// The ablation row `OmniMatch-BERT` of Table 5.
    pub fn with_transformer(mut self) -> Self {
        self.extractor = ExtractorKind::Transformer;
        self
    }

    /// Validate invariants; called by the trainer before use.
    pub fn validate(&self) {
        assert!(self.doc_len >= *self.kernel_widths.iter().max().unwrap_or(&1),
            "doc_len must be at least the widest kernel");
        assert!(!self.kernel_widths.is_empty(), "need kernel widths");
        assert!(self.batch_size >= 2, "batch must hold at least 2 samples");
        assert!(self.temperature > 0.0, "temperature must be positive");
        assert!((0.0..1.0).contains(&self.dropout), "dropout in [0,1)");
        assert!(self.epochs >= 1, "need at least one epoch");
        if self.extractor == ExtractorKind::Transformer {
            assert!(self.emb_dim.is_multiple_of(2), "transformer needs even emb_dim");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = OmniMatchConfig::default();
        assert_eq!(c.kernel_widths, vec![3, 4, 5]);
        assert_eq!(c.lr, 1.0);
        assert_eq!(c.rho, 0.95);
        assert_eq!(c.dropout, 0.4);
        assert_eq!(c.batch_size, 64);
        assert_eq!(c.temperature, 0.07);
        assert_eq!(c.alpha, 0.2);
        assert_eq!(c.beta, 0.1);
        assert_eq!(c.text_field, TextField::Summary);
        assert!(c.use_scl && c.use_da);
        assert_eq!(c.aux_mode, AuxMode::Generated);
    }

    #[test]
    fn ablation_builders() {
        let c = OmniMatchConfig::default().without_scl();
        assert!(!c.use_scl && c.use_da);
        let c = OmniMatchConfig::default().without_da();
        assert!(c.use_scl && !c.use_da);
        let c = OmniMatchConfig::default().without_aux_reviews();
        assert_eq!(c.aux_mode, AuxMode::SourceFallback);
        let c = OmniMatchConfig::default().with_transformer();
        assert_eq!(c.extractor, ExtractorKind::Transformer);
        let base_len = OmniMatchConfig::default().doc_len;
        let c = OmniMatchConfig::default().with_full_review_text();
        assert_eq!(c.text_field, TextField::FullText);
        assert_eq!(c.doc_len, base_len * 2);
    }

    #[test]
    fn validate_accepts_defaults() {
        OmniMatchConfig::default().validate();
        OmniMatchConfig::fast().validate();
    }

    #[test]
    #[should_panic(expected = "widest kernel")]
    fn validate_rejects_short_docs() {
        let c = OmniMatchConfig {
            doc_len: 2,
            ..OmniMatchConfig::default()
        };
        c.validate();
    }
}
