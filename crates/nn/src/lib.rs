//! # om-nn
//!
//! Neural-network building blocks on top of [`om_tensor`], covering exactly
//! the architecture OmniMatch (EDBT 2025) needs:
//!
//! * layers — [`Linear`], [`Embedding`], [`TextCnn`] (multi-width
//!   convolution + max-over-time, §4.2 of the paper), [`Dropout`], [`Mlp`],
//!   and a small [`TransformerEncoder`] for the `OmniMatch-BERT` ablation;
//! * losses — softmax cross-entropy (on the tensor), [`mse_loss`], and the
//!   supervised contrastive loss [`supcon_loss`] of Khosla et al. (Eq. 13);
//! * optimizers — [`Adadelta`] (the paper's optimizer, §5.4), plus
//!   [`Sgd`] and [`Adam`];
//! * checkpointing — binary save/load of parameter sets via `bytes`;
//! * serving — [`inference_mode`], an RAII scope that disables tape
//!   allocation and forces [`Dropout`] to the identity for read-only
//!   forwards (used by `om-serve`).

pub mod dropout;
pub mod embedding;
pub mod inference;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod module;
pub mod optim;
pub mod serialize;
pub mod shapecheck;
pub mod textcnn;
pub mod transformer;

pub use dropout::Dropout;
pub use embedding::Embedding;
pub use inference::{inference_mode, is_inference, InferenceGuard};
pub use linear::Linear;
pub use loss::{mse_loss, supcon_loss, SupConBatch};
pub use mlp::Mlp;
pub use module::HasParams;
pub use optim::{Adadelta, Adam, OptSlot, OptState, Optimizer, Sgd, StepStats};
pub use serialize::{CheckpointError, CheckpointV2};
pub use shapecheck::{Dim, NodeId, Op, Shape, ShapeError, ShapeGraph, ShapeReport};
pub use textcnn::TextCnn;
pub use transformer::TransformerEncoder;
