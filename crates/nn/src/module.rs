//! Parameter collection: the minimal "module system" the dynamic graph
//! needs. A module is any struct that can enumerate its trainable tensors.

use om_tensor::Tensor;

/// Implemented by every layer/model that owns trainable parameters.
///
/// `params()` returns handles (cheap `Rc` clones) to the *live* parameter
/// tensors, so optimizers mutate the same storage the forward pass reads.
pub trait HasParams {
    /// All trainable parameters of this module, in a stable order.
    fn params(&self) -> Vec<Tensor>;

    /// Total number of trainable scalars.
    fn num_params(&self) -> usize {
        self.params().iter().map(Tensor::numel).sum()
    }

    /// Clear accumulated gradients on every parameter.
    fn zero_grad(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }
}

/// Collect the parameters of several modules into one flat list (e.g. to
/// hand the whole model to one optimizer).
pub fn collect_params(modules: &[&dyn HasParams]) -> Vec<Tensor> {
    modules.iter().flat_map(|m| m.params()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        w: Tensor,
        b: Tensor,
    }

    impl HasParams for Toy {
        fn params(&self) -> Vec<Tensor> {
            vec![self.w.clone(), self.b.clone()]
        }
    }

    #[test]
    fn num_params_counts_scalars() {
        let t = Toy {
            w: Tensor::zeros(&[3, 4]).requires_grad(),
            b: Tensor::zeros(&[4]).requires_grad(),
        };
        assert_eq!(t.num_params(), 16);
    }

    #[test]
    fn zero_grad_clears_all() {
        let t = Toy {
            w: Tensor::zeros(&[2]).requires_grad(),
            b: Tensor::zeros(&[2]).requires_grad(),
        };
        t.w.accumulate_grad(&[1.0, 1.0]);
        t.zero_grad();
        assert!(t.w.grad_vec().is_none());
    }

    #[test]
    fn collect_flattens() {
        let a = Toy {
            w: Tensor::zeros(&[1]).requires_grad(),
            b: Tensor::zeros(&[1]).requires_grad(),
        };
        let b = Toy {
            w: Tensor::zeros(&[1]).requires_grad(),
            b: Tensor::zeros(&[1]).requires_grad(),
        };
        assert_eq!(collect_params(&[&a, &b]).len(), 4);
    }
}
