//! Differential suite: the sharded engine vs the single-arena engine,
//! **bitwise**, across random shard widths, catalogue sizes, `k`, request
//! groupings, and `OM_THREADS` settings — NaN ordering and exact-tie
//! index order included.
//!
//! Two layers:
//!
//! * a *real* trained scenario (warm + cold users, the tower in the loop)
//!   where the shard width and thread count are swept against a
//!   single-thread single-arena reference;
//! * *synthetic* catalogues built from counter-mode feature rows with
//!   injected NaN rows and duplicated rows (guaranteed exact score ties),
//!   where catalogue size, shard width, and `k` all vary per case.
//!
//! The single-arena engine is PR 5's engine, untouched; it is the oracle.

use std::cell::{OnceCell, RefCell};
use std::sync::{Mutex, MutexGuard, OnceLock};

use om_data::types::{ItemId, UserId};
use om_data::{synth_feature_rows, SplitConfig, SynthConfig, SynthWorld};
use om_serve::{
    load_model, ItemArena, Request, Response, ServeEngine, ServeOptions, ShardedEngine, UserArena,
};
use om_tensor::{runtime, seeded_rng};
use omnimatch_core::{CorpusViews, OmniMatchConfig, Trainer};
use proptest::prelude::*;

/// Serialise mutations of the global thread count across test threads.
fn thread_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn assert_same_response(a: &Response, b: &Response) {
    assert_eq!(a.id, b.id);
    assert_eq!(a.user, b.user);
    assert_eq!(a.top.len(), b.top.len(), "top-K length for user {:?}", a.user);
    for ((ia, sa), (ib, sb)) in a.top.iter().zip(&b.top) {
        assert_eq!(ia, ib, "item mismatch for user {:?}", a.user);
        assert_eq!(
            sa.to_bits(),
            sb.to_bits(),
            "score bits differ for user {:?} item {:?}",
            a.user,
            ia
        );
    }
}

// ---------------------------------------------------------------------------
// Layer 1: real trained scenario, shard width × threads × grouping.
// ---------------------------------------------------------------------------

struct Ctx {
    sharded: RefCell<ShardedEngine>,
    users: Vec<UserId>,
    /// Single-arena single-thread reference responses, in `users` order.
    reference: Vec<Response>,
}

fn build_ctx() -> Ctx {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let trained = Trainer::new(OmniMatchConfig::fast().with_seed(31)).fit(&scenario);
    let warm = scenario.train_users.clone();
    let (model, views, _) = trained.into_parts();
    let users = views.users().to_vec();
    let engine = ServeEngine::new(model, views, &warm, ServeOptions::default());
    let reference = {
        let _g = thread_lock();
        let prev = runtime::set_threads(1);
        let r = users
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                engine
                    .serve_one(Request { id: i as u64, user: u, arrive_us: 0 })
                    .expect("serve one")
            })
            .collect();
        runtime::set_threads(prev);
        r
    };
    Ctx { sharded: RefCell::new(ShardedEngine::new(engine)), users, reference }
}

// `Tensor` is an `Rc` handle, so the engine cannot live in a shared
// static; each test thread builds (and re-uses) its own.
thread_local! {
    static CTX: OnceCell<Ctx> = const { OnceCell::new() };
}

fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    CTX.with(|c| {
        if c.get().is_none() {
            let _ = c.set(build_ctx());
        }
        f(c.get().expect("ctx initialised"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_equals_single_arena_on_the_real_scenario(
        shard_width in 1usize..40,
        grouping_seed in 0u64..10_000,
        threads in 0usize..4,
    ) {
        with_ctx(|ctx| {
            // Arbitrary partition of the request list into microbatches.
            let mut groups: Vec<Vec<Request>> = Vec::new();
            let mut cur: Vec<Request> = Vec::new();
            let mut h = grouping_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut cut = (h % 5) as usize + 1;
            for (i, &u) in ctx.users.iter().enumerate() {
                cur.push(Request { id: i as u64, user: u, arrive_us: 0 });
                if cur.len() >= cut {
                    groups.push(std::mem::take(&mut cur));
                    h = h.wrapping_mul(0xD130_2B97_9AF6_2F05).rotate_left(17);
                    cut = (h % 5) as usize + 1;
                }
            }
            if !cur.is_empty() {
                groups.push(cur);
            }

            let mut sharded = ctx.sharded.borrow_mut();
            sharded.set_shard_items(shard_width);
            let _g = thread_lock();
            let prev = runtime::set_threads(threads);
            let got: Vec<Response> = groups
                .iter()
                .flat_map(|g| sharded.serve_batch(g).expect("serve batch"))
                .collect();
            runtime::set_threads(prev);

            assert_eq!(got.len(), ctx.reference.len());
            for (a, b) in got.iter().zip(&ctx.reference) {
                assert_same_response(a, b);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Layer 2: synthetic catalogues — size, width, k, NaNs, exact ties.
// ---------------------------------------------------------------------------

/// Checkpoint + recipe to rebuild models cheaply per case (training once,
/// loading many times — engines consume their model).
struct SynthCtx {
    cfg: OmniMatchConfig,
    ckpt: Vec<u8>,
    vocab_size: usize,
    scenario: om_data::split::CrossDomainScenario,
    user_dim: usize,
    item_dim: usize,
}

fn build_synth_ctx() -> SynthCtx {
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let cfg = OmniMatchConfig::fast().with_seed(37);
    let trained = Trainer::new(cfg.clone()).fit(&scenario);
    let ckpt = trained.export_checkpoint().to_vec();
    let (_, views, _) = trained.into_parts();
    let vocab_size = views.vocab.len();
    SynthCtx {
        user_dim: cfg.invariant_dim + cfg.specific_dim,
        item_dim: cfg.item_dim,
        cfg,
        ckpt,
        vocab_size,
        scenario,
    }
}

thread_local! {
    static SYNTH_CTX: OnceCell<SynthCtx> = const { OnceCell::new() };
}

fn with_synth_ctx<R>(f: impl FnOnce(&SynthCtx) -> R) -> R {
    SYNTH_CTX.with(|c| {
        if c.get().is_none() {
            let _ = c.set(build_synth_ctx());
        }
        f(c.get().expect("ctx initialised"))
    })
}

/// Build a sharded engine over a synthetic catalogue of `n_items` items
/// and `n_users` warm users, with NaN-poisoned and duplicated item rows.
fn synth_engine(ctx: &SynthCtx, n_users: usize, n_items: usize, k: usize, seed: u64) -> ShardedEngine {
    let model = load_model(&ctx.cfg, ctx.vocab_size, &ctx.ckpt).expect("decode checkpoint");
    let views = CorpusViews::build(&ctx.scenario, &ctx.cfg, &mut seeded_rng(ctx.cfg.seed));

    let mut item_rows = synth_feature_rows(n_items, ctx.item_dim, seed);
    let mut h = seed | 1;
    for r in 0..n_items {
        h = h.wrapping_mul(0xD130_2B97_9AF6_2F05).rotate_left(23);
        match h % 7 {
            // NaN-poison a row: every pair through it scores NaN, which
            // must rank last in both engines, in index order.
            0 => item_rows[r * ctx.item_dim..(r + 1) * ctx.item_dim].fill(f32::NAN),
            // Duplicate an earlier row bit-for-bit: an exact score tie,
            // which must resolve by arena index in both engines.
            1 if r > 0 => {
                let src = (h >> 8) as usize % r;
                let copied: Vec<f32> =
                    item_rows[src * ctx.item_dim..(src + 1) * ctx.item_dim].to_vec();
                item_rows[r * ctx.item_dim..(r + 1) * ctx.item_dim].copy_from_slice(&copied);
            }
            _ => {}
        }
    }
    let items = ItemArena::from_raw(
        (0..n_items as u32).map(ItemId).collect(),
        item_rows,
        ctx.item_dim,
    );
    let users = UserArena::from_raw(
        (0..n_users as u32).map(UserId).collect(),
        synth_feature_rows(n_users, ctx.user_dim, seed ^ 0xABCD),
        ctx.user_dim,
    );
    let opts = ServeOptions { topk: k, ..ServeOptions::default() };
    ShardedEngine::new(ServeEngine::with_arenas(model, views, items, users, opts))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_equals_single_arena_on_synthetic_catalogues(
        n_items in 1usize..400,
        n_users in 1usize..12,
        shard_width in 1usize..96,
        k in 1usize..24,
        seed in 0u64..1_000,
        threads in 0usize..4,
    ) {
        with_synth_ctx(|ctx| {
            let mut engine = synth_engine(ctx, n_users, n_items, k, seed);
            engine.set_shard_items(shard_width);
            let reqs: Vec<Request> = (0..n_users)
                .map(|i| Request { id: i as u64, user: UserId(i as u32), arrive_us: 0 })
                .collect();

            let _g = thread_lock();
            let prev = runtime::set_threads(threads);
            // Oracle: the wrapped single-arena engine over the same arenas.
            let want: Vec<Response> = reqs
                .iter()
                .map(|&r| engine.inner().serve_one(r).expect("serve one"))
                .collect();
            let got = engine.serve_batch(&reqs).expect("serve batch");

            // Full score rows must match bitwise too, shard by shard.
            for req in &reqs {
                let a = engine.score_user(req.user).expect("score user");
                let b = engine.inner().score_user(req.user).expect("score user");
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            runtime::set_threads(prev);

            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                assert_same_response(a, b);
            }
            // NaN scores, when k reaches into them, still come back NaN —
            // never silently dropped from the page.
            for resp in &got {
                prop_assert!(resp.top.len() == k.min(n_items));
            }
        });
    }
}
