//! Elementwise arithmetic and activations.

use super::{acc, wants_grad};
use crate::Tensor;

impl Tensor {
    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "{op}: shape mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise addition of two same-shape tensors.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        let out: Vec<f32> = {
            let a = self.data();
            let b = other.data();
            a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
        };
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                acc(&parents[0], g);
                acc(&parents[1], g);
            }),
        )
    }

    /// Elementwise subtraction `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "sub");
        let out: Vec<f32> = {
            let a = self.data();
            let b = other.data();
            a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
        };
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                acc(&parents[0], g);
                if wants_grad(&parents[1]) {
                    let neg: Vec<f32> = g.iter().map(|x| -x).collect();
                    acc(&parents[1], &neg);
                }
            }),
        )
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        let out: Vec<f32> = {
            let a = self.data();
            let b = other.data();
            a.iter().zip(b.iter()).map(|(x, y)| x * y).collect()
        };
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let (pa, pb) = (&parents[0], &parents[1]);
                if wants_grad(pa) {
                    let b = pb.data();
                    let ga: Vec<f32> = g.iter().zip(b.iter()).map(|(x, y)| x * y).collect();
                    acc(pa, &ga);
                }
                if wants_grad(pb) {
                    let a = pa.data();
                    let gb: Vec<f32> = g.iter().zip(a.iter()).map(|(x, y)| x * y).collect();
                    acc(pb, &gb);
                }
            }),
        )
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, c: f32) -> Tensor {
        let out: Vec<f32> = self.data().iter().map(|x| x * c).collect();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp: Vec<f32> = g.iter().map(|x| x * c).collect();
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        let out: Vec<f32> = self.data().iter().map(|x| x + c).collect();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| acc(&parents[0], g)),
        )
    }

    /// Negate every element.
    pub fn neg(&self) -> Tensor {
        self.scale(-1.0)
    }

    /// Broadcast-add a row vector `[n]` to every row of a `[..., n]` tensor.
    /// This is the bias pattern of a dense layer.
    pub fn add_row(&self, row: &Tensor) -> Tensor {
        let (_, n) = self.shape().as_2d();
        assert_eq!(
            row.numel(),
            n,
            "add_row: row length {} does not match last dim {}",
            row.numel(),
            n
        );
        let out: Vec<f32> = {
            let a = self.data();
            let b = row.data();
            a.iter()
                .enumerate()
                .map(|(i, x)| x + b[i % n])
                .collect()
        };
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone(), row.clone()],
            Box::new(move |g, parents| {
                acc(&parents[0], g);
                if wants_grad(&parents[1]) {
                    let mut gb = vec![0.0f32; n];
                    for (i, x) in g.iter().enumerate() {
                        gb[i % n] += x;
                    }
                    acc(&parents[1], &gb);
                }
            }),
        )
    }

    /// Broadcast-multiply a row vector `[n]` into every row of a `[..., n]`
    /// tensor. This is the gain pattern of layer normalisation.
    pub fn mul_row(&self, row: &Tensor) -> Tensor {
        let (_, n) = self.shape().as_2d();
        assert_eq!(
            row.numel(),
            n,
            "mul_row: row length {} does not match last dim {}",
            row.numel(),
            n
        );
        let out: Vec<f32> = {
            let a = self.data();
            let b = row.data();
            a.iter().enumerate().map(|(i, x)| x * b[i % n]).collect()
        };
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone(), row.clone()],
            Box::new(move |g, parents| {
                let (pa, pb) = (&parents[0], &parents[1]);
                if wants_grad(pa) {
                    let b = pb.data();
                    let ga: Vec<f32> = g.iter().enumerate().map(|(i, x)| x * b[i % n]).collect();
                    acc(pa, &ga);
                }
                if wants_grad(pb) {
                    let a = pa.data();
                    let mut gb = vec![0.0f32; n];
                    for (i, x) in g.iter().enumerate() {
                        gb[i % n] += x * a[i];
                    }
                    acc(pb, &gb);
                }
            }),
        )
    }

    /// Rectified linear unit, the paper's activation (Eq. 5).
    pub fn relu(&self) -> Tensor {
        let out: Vec<f32> = self.data().iter().map(|&x| x.max(0.0)).collect();
        let mask: Vec<bool> = self.data().iter().map(|&x| x > 0.0).collect();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp: Vec<f32> = g
                        .iter()
                        .zip(mask.iter())
                        .map(|(&x, &m)| if m { x } else { 0.0 })
                        .collect();
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        let out: Vec<f32> = self
            .data()
            .iter()
            .map(|&x| 1.0 / (1.0 + (-x).exp()))
            .collect();
        let saved = out.clone();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp: Vec<f32> = g
                        .iter()
                        .zip(saved.iter())
                        .map(|(&gy, &y)| gy * y * (1.0 - y))
                        .collect();
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh_act(&self) -> Tensor {
        let out: Vec<f32> = self.data().iter().map(|&x| x.tanh()).collect();
        let saved = out.clone();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp: Vec<f32> = g
                        .iter()
                        .zip(saved.iter())
                        .map(|(&gy, &y)| gy * (1.0 - y * y))
                        .collect();
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        let out: Vec<f32> = self.data().iter().map(|&x| x.exp()).collect();
        let saved = out.clone();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp: Vec<f32> = g
                        .iter()
                        .zip(saved.iter())
                        .map(|(&gy, &y)| gy * y)
                        .collect();
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Elementwise natural logarithm (inputs must be positive).
    pub fn log(&self) -> Tensor {
        let saved = self.to_vec();
        let out: Vec<f32> = saved.iter().map(|&x| x.ln()).collect();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp: Vec<f32> = g
                        .iter()
                        .zip(saved.iter())
                        .map(|(&gy, &x)| gy / x)
                        .collect();
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.mul(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn add_forward_backward() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).requires_grad();
        let y = a.add(&b).sum_all();
        assert_eq!(y.item(), 10.0);
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![1.0, 1.0]);
        assert_eq!(b.grad_vec().unwrap(), vec![1.0, 1.0]);
    }

    #[test]
    fn sub_backward_negates_rhs() {
        let a = Tensor::from_vec(vec![5.0, 5.0], &[2]).requires_grad();
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let y = a.sub(&b).sum_all();
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![1.0, 1.0]);
        assert_eq!(b.grad_vec().unwrap(), vec![-1.0, -1.0]);
    }

    #[test]
    fn mul_backward_is_cross() {
        let a = Tensor::from_vec(vec![2.0, 3.0], &[2]).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 7.0], &[2]).requires_grad();
        let y = a.mul(&b).sum_all();
        assert_eq!(y.item(), 31.0);
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![5.0, 7.0]);
        assert_eq!(b.grad_vec().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn scale_and_add_scalar() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]).requires_grad();
        let y = a.scale(3.0).add_scalar(1.0).sum_all();
        assert_eq!(y.item(), 3.0 - 6.0 + 2.0);
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![3.0, 3.0]);
    }

    #[test]
    fn add_row_broadcasts_bias() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).requires_grad();
        let y = x.add_row(&b);
        assert_eq!(y.to_vec(), vec![11.0, 22.0, 13.0, 24.0]);
        y.sum_all().backward();
        assert_eq!(b.grad_vec().unwrap(), vec![2.0, 2.0]);
    }

    #[test]
    fn relu_kills_negative_gradient() {
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[2]).requires_grad();
        let y = x.relu();
        assert_eq!(y.to_vec(), vec![0.0, 2.0]);
        y.sum_all().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn sigmoid_tanh_exp_log_forward() {
        let x = Tensor::from_vec(vec![0.0], &[1]);
        assert!(close(x.sigmoid().item(), 0.5));
        assert!(close(x.tanh_act().item(), 0.0));
        assert!(close(x.exp().item(), 1.0));
        let e = Tensor::from_vec(vec![std::f32::consts::E], &[1]);
        assert!(close(e.log().item(), 1.0));
    }

    #[test]
    fn square_matches_mul_self() {
        let x = Tensor::from_vec(vec![3.0, -4.0], &[2]).requires_grad();
        let y = x.square().sum_all();
        assert_eq!(y.item(), 25.0);
        y.backward();
        assert_eq!(x.grad_vec().unwrap(), vec![6.0, -8.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }
}
