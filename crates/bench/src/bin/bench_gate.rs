//! Benchmark-regression gate: compares freshly produced `BENCH_*.json`
//! reports against the committed baselines and fails CI when a median
//! regresses past the failure factor.
//!
//! For every `BENCH_*.json` in the baseline directory the same file must
//! exist in the current directory and contain every baseline bench name —
//! a missing file or bench is a hard failure (a silently dropped
//! benchmark must not pass the gate). Comparison is on `median_ms`:
//!
//! * ratio > fail factor (default 1.30×)     → FAIL, exit 1
//! * ratio > warn factor (default 1.15×)     → WARN, exit 0
//! * ratio < improve factor (default 0.70×)  → STALE, exit 1
//! * otherwise                               → OK (improvements print too)
//!
//! The improve-factor leg is the **stale-baseline detector**: a median
//! that comes in better than 0.70× of baseline almost always means an
//! intentional optimisation landed without re-ratcheting the committed
//! baseline — and a stale baseline would let the next regression eat the
//! entire headroom silently. The gate fails until the baseline is
//! re-recorded at the new speed.
//!
//! Usage:
//!   cargo bench-gate [--current DIR] [--baseline DIR]
//!                    [--fail-factor F] [--warn-factor W]
//!                    [--improve-factor I]
//!                    [--only BENCH_file.json]...
//!
//! `--only` (repeatable) restricts the gate to the named baseline files —
//! for CI jobs that produce a subset of the reports (e.g. the load-smoke
//! job gates only `BENCH_serve_load.json`). Naming a file the baseline
//! directory does not contain is an error, and so is a filter that ends
//! up matching **zero benches** (e.g. every named baseline has an empty
//! `benches` array) — a gate that compares nothing must not report OK.
//!
//! Re-baselining (after an intentional perf change): re-run `bench_json`
//! and `serve_bench` on a quiet machine and copy the fresh reports over
//! `bench/baselines/` — see README.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use om_obs::json::Json;

struct Row {
    file: String,
    name: String,
    base_ms: f64,
    cur_ms: f64,
}

fn medians(path: &Path) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let benches = doc
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: no benches array", path.display()))?;
    let mut out = Vec::with_capacity(benches.len());
    for b in benches {
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{}: bench without a name", path.display()))?;
        let med = b
            .get("median_ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{}: {name} has no median_ms", path.display()))?;
        out.push((name.to_string(), med));
    }
    Ok(out)
}

fn run() -> Result<bool, String> {
    let mut current = PathBuf::from(".");
    let mut baseline = PathBuf::from("bench/baselines");
    let mut fail_factor = 1.30f64;
    let mut warn_factor = 1.15f64;
    let mut improve_factor = 0.70f64;
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--current" => current = PathBuf::from(val("--current")?),
            "--baseline" => baseline = PathBuf::from(val("--baseline")?),
            "--only" => only.push(val("--only")?),
            "--fail-factor" => {
                fail_factor = val("--fail-factor")?
                    .parse()
                    .map_err(|e| format!("--fail-factor: {e}"))?
            }
            "--warn-factor" => {
                warn_factor = val("--warn-factor")?
                    .parse()
                    .map_err(|e| format!("--warn-factor: {e}"))?
            }
            "--improve-factor" => {
                improve_factor = val("--improve-factor")?
                    .parse()
                    .map_err(|e| format!("--improve-factor: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }

    let mut files: Vec<PathBuf> = std::fs::read_dir(&baseline)
        .map_err(|e| format!("baseline dir {}: {e}", baseline.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no BENCH_*.json baselines in {}", baseline.display()));
    }
    if !only.is_empty() {
        for name in &only {
            if !files.iter().any(|p| p.file_name().and_then(|n| n.to_str()) == Some(name)) {
                return Err(format!("--only {name}: no such baseline in {}", baseline.display()));
            }
        }
        files.retain(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| only.iter().any(|o| o == n))
        });
    }

    let mut rows: Vec<Row> = Vec::new();
    for base_path in &files {
        let file = base_path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("filtered on utf-8 names")
            .to_string();
        let base = medians(base_path)?;
        let cur_path = current.join(&file);
        let cur = medians(&cur_path)
            .map_err(|e| format!("current report missing or unreadable — {e}"))?;
        for (name, base_ms) in base {
            let cur_ms = cur
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, m)| *m)
                .ok_or_else(|| format!("{file}: bench '{name}' missing from current run"))?;
            rows.push(Row { file: file.clone(), name, base_ms, cur_ms });
        }
    }

    if rows.is_empty() {
        // A gate that compared nothing must not report OK: every named
        // baseline existed but held zero benches, so nothing was checked.
        return Err(if only.is_empty() {
            format!("baselines in {} contain no benches to gate", baseline.display())
        } else {
            format!(
                "--only {} matched no benches: the named baseline file(s) contain empty \
                 `benches` arrays, so the gate would pass vacuously",
                only.join(", ")
            )
        });
    }

    let wide = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
    println!(
        "{:<20} {:<wide$} {:>12} {:>12} {:>8}  verdict",
        "file", "bench", "base ms", "cur ms", "ratio"
    );
    let mut failed = false;
    let mut warned = false;
    let mut stale = false;
    for r in &rows {
        let ratio = if r.base_ms > 0.0 { r.cur_ms / r.base_ms } else { f64::INFINITY };
        let verdict = if ratio > fail_factor {
            failed = true;
            "FAIL"
        } else if ratio > warn_factor {
            warned = true;
            "WARN"
        } else if ratio < improve_factor {
            stale = true;
            "STALE"
        } else if ratio < 1.0 / warn_factor {
            "FASTER"
        } else {
            "OK"
        };
        println!(
            "{:<20} {:<wide$} {:>12.4} {:>12.4} {:>7.2}x  {verdict}",
            r.file, r.name, r.base_ms, r.cur_ms, ratio
        );
    }
    println!(
        "bench-gate: {} benches, fail > {fail_factor:.2}x, warn > {warn_factor:.2}x, \
         stale < {improve_factor:.2}x",
        rows.len()
    );
    if failed {
        println!("bench-gate: FAIL — median regression beyond the failure factor");
    } else if stale {
        println!(
            "bench-gate: FAIL — improvement beyond the improve factor: the committed \
             baseline is stale; re-ratchet it (see README) so the win is locked in"
        );
    } else if warned {
        println!("bench-gate: WARN — regression within tolerance; watch this trend");
    } else {
        println!("bench-gate: OK");
    }
    Ok(!failed && !stale)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench-gate: error: {e}");
            ExitCode::FAILURE
        }
    }
}
