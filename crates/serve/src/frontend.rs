//! Threaded serving front-end: a bounded queue feeding the microbatcher.
//!
//! The engines and the [`crate::Microbatcher`] are synchronous and
//! caller-clocked; this module adds the missing production shape — many
//! request producers, one scoring consumer — without any new dependency:
//!
//! * producers hold a cloneable [`FrontendHandle`] over a **bounded**
//!   `std::sync::mpsc::sync_channel`; [`FrontendHandle::try_send`] never
//!   blocks and never panics — a full queue is an explicit, typed
//!   [`SubmitError::QueueFull`] rejection (admission control: shed load at
//!   the door instead of growing an unbounded queue until the process
//!   dies);
//! * one worker thread owns the scorer (engines hold `Rc`-based tensors
//!   and are not `Send`, so the worker *builds* the scorer itself from a
//!   `Send` factory closure), pumps arrivals into a microbatcher, and
//!   flushes on size or deadline exactly like the synchronous loop;
//! * producers can also stream interactions through
//!   [`FrontendHandle::submit_interaction`] — events ride the same
//!   bounded FIFO and the worker applies them via
//!   [`BatchScorer::apply_event`], which on the engines re-encodes the
//!   user's row and hot-swaps the user-arena generation (see
//!   [`crate::update`]); accepted events are applied before shutdown for
//!   the same gate + FIFO reason accepted requests are served;
//! * [`Frontend::shutdown`] closes the admission gate, then enqueues a
//!   stop marker **behind** every accepted request, so in-flight work
//!   drains — every accepted request gets a response before the worker
//!   exits — and returns the tallies.
//!
//! The shutdown protocol needs the gate, not just the marker: without it
//! a producer's `try_send` can race `shutdown` and land a request *after*
//! the stop marker, where the worker's final sweep may already have run —
//! an accepted-but-never-served request. [`FrontendHandle::try_send`]
//! therefore sends while holding a shared `closed` lock that `shutdown`
//! flips before it enqueues the marker; channel FIFO then guarantees
//! every accepted request precedes the marker. Every interleaving of this
//! protocol is model-checked in `crates/lint/tests/frontend_model.rs`.
//!
//! Backpressure, then, is the queue bound itself: a slow consumer can
//! hold at most `queue_cap` requests plus one in-progress microbatch in
//! memory, and everything beyond that is rejected at submit time where
//! the caller can retry, degrade, or shed. `tests/frontend_backpressure.rs`
//! pins the queue behaviours.
//!
//! ## Telemetry
//!
//! Every accepted request is stamped with a monotone admission sequence
//! number and clock readings at admission, dequeue, batch close and
//! reply; the deltas feed the per-stage latency histograms
//! `serve.queue_wait`, `serve.batch_wait` and `serve.e2e` (the engines
//! record `serve.score` / `serve.merge` inside the flush), each recorded
//! into **both** the run-scoped [`om_obs::metrics`] registry (for
//! `events.jsonl` / `obs-report`) and the always-on [`om_obs::live`]
//! plane (for `/metrics`). All tallies live in one set of shared atomics
//! ([`StatsSnapshot`] via [`FrontendHandle::stats_snapshot`]), and the
//! shutdown [`FrontendStats`] is derived from the *same* atomics, so the
//! two views cannot disagree. Served, rejected and scorer-error events
//! also land in the [`om_obs::flightrec`] ring, which is dumped on a
//! scorer error, on [`Frontend::shutdown`] with errors, and when the
//! `scorer` kill point fires. None of this touches the scoring inputs:
//! responses are bitwise identical with telemetry enabled or disabled
//! (`tests/obs_parity.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use om_obs::flightrec::FlightRecord;

use crate::batcher::Microbatcher;
use crate::engine::{Request, Response, ServeEngine};
use crate::error::ServeError;
use crate::shard::ShardedEngine;
use crate::update::{UpdateOutcome, UserEvent};

/// Anything that can score a microbatch of requests. Both engines
/// qualify; tests substitute stubs to pin queue behaviour without a
/// model.
pub trait BatchScorer {
    /// Score a flushed microbatch, one [`Response`] per request, in
    /// request order. A scoring failure degrades that flush, not the
    /// worker: the front-end counts it and keeps draining.
    fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError>;

    /// Ingest one streamed interaction (the online graduation path).
    /// Engines re-encode and hot-swap; the default no-op keeps stub
    /// scorers compiling — they accept events and do nothing.
    fn apply_event(&self, _ev: &UserEvent) -> Result<Option<UpdateOutcome>, ServeError> {
        Ok(None)
    }
}

impl BatchScorer for ServeEngine {
    fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        ServeEngine::serve_batch(self, reqs)
    }

    fn apply_event(&self, ev: &UserEvent) -> Result<Option<UpdateOutcome>, ServeError> {
        ServeEngine::apply_event(self, ev).map(Some)
    }
}

impl BatchScorer for ShardedEngine {
    fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        ShardedEngine::serve_batch(self, reqs)
    }

    fn apply_event(&self, ev: &UserEvent) -> Result<Option<UpdateOutcome>, ServeError> {
        ShardedEngine::apply_event(self, ev).map(Some)
    }
}

/// Front-end knobs; [`FrontendOptions::from_env`] also reads
/// `OM_SERVE_QUEUE` for the queue bound.
#[derive(Debug, Clone)]
pub struct FrontendOptions {
    /// Bounded queue capacity (`OM_SERVE_QUEUE`, default 256). Submits
    /// beyond this are rejected, not blocked.
    pub queue_cap: usize,
    /// Microbatch flush size (see [`crate::ServeOptions::batch`]).
    pub batch: usize,
    /// Max queueing delay before a partial batch flushes, microseconds.
    pub wait_us: u64,
}

impl Default for FrontendOptions {
    fn default() -> FrontendOptions {
        FrontendOptions { queue_cap: 256, batch: 8, wait_us: 2_000 }
    }
}

impl FrontendOptions {
    /// Batch/wait from `opts`, queue bound from `OM_SERVE_QUEUE` (default
    /// 256). A set `OM_SERVE_QUEUE` that does not parse to an integer of
    /// at least 1 is a [`ServeError::BadEnv`]: a zero-capacity bounded
    /// channel would reject every submit forever — fail at parse, not in
    /// production.
    pub fn from_serve(opts: &crate::ServeOptions) -> Result<FrontendOptions, ServeError> {
        let queue_cap = match std::env::var("OM_SERVE_QUEUE") {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(v) if v >= 1 => v,
                _ => return Err(ServeError::BadEnv { var: "OM_SERVE_QUEUE", value: raw }),
            },
            Err(_) => FrontendOptions::default().queue_cap,
        };
        Ok(FrontendOptions { queue_cap, batch: opts.batch, wait_us: opts.wait_us })
    }

    /// Defaults overridden by the `OM_SERVE_*` environment.
    pub fn from_env() -> Result<FrontendOptions, ServeError> {
        FrontendOptions::from_serve(&crate::ServeOptions::from_env()?)
    }
}

/// Why a submit was not accepted. Both cases are the caller's signal to
/// back off; neither ever panics or blocks the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: the bounded queue is at capacity.
    QueueFull {
        /// The configured bound the queue is at.
        capacity: usize,
    },
    /// The worker has shut down; no further requests will be scored.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "serve queue full (capacity {capacity})")
            }
            SubmitError::Shutdown => write!(f, "serve front-end is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// End-of-run tallies from [`Frontend::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendStats {
    /// Requests scored (every accepted request is served, even on
    /// shutdown).
    pub served: u64,
    /// Microbatch flushes executed.
    pub flushes: u64,
    /// Submits rejected by admission control.
    pub rejected: u64,
    /// Flushes whose scorer returned an error (those requests got no
    /// response; the worker kept draining).
    pub scorer_errors: u64,
}

/// A point-in-time view of the front-end, readable from any thread at any
/// moment via [`FrontendHandle::stats_snapshot`] — no shutdown required.
/// Backed by the same atomics the shutdown [`FrontendStats`] is built
/// from, so the two can never disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests accepted past the admission gate (equal to the highest
    /// admission sequence number handed out).
    pub admitted: u64,
    /// Requests scored and replied to.
    pub served: u64,
    /// Microbatch flushes executed.
    pub flushes: u64,
    /// Submits rejected because the bounded queue was at capacity.
    pub rejected_full: u64,
    /// Submits rejected because the front-end was shut (or shutting) down.
    pub rejected_shutdown: u64,
    /// Flushes whose scorer returned an error.
    pub scorer_errors: u64,
    /// Accepted requests that never got a response (their flush errored).
    pub dropped: u64,
    /// Accepted requests not yet replied to (queued, batching or scoring).
    pub in_flight: u64,
    /// Requests currently sitting in the bounded queue.
    pub queue_depth: u64,
    /// High-water mark of `queue_depth` over the front-end's lifetime.
    pub queue_hwm: u64,
    /// Interactions accepted through [`FrontendHandle::submit_interaction`].
    pub interactions: u64,
    /// Cold→warm graduations the worker's scorer reported.
    pub graduations: u64,
    /// User-arena generation swaps the worker's scorer reported.
    pub swaps: u64,
    /// Interactions whose apply failed (the old generation kept serving).
    pub update_errors: u64,
    /// Is the worker thread still running?
    pub worker_alive: bool,
    /// Has the factory finished building the scorer (for engine scorers:
    /// model loaded, item arena mapped)?
    pub scorer_ready: bool,
}

impl StatsSnapshot {
    /// The shutdown-shaped view of this snapshot ([`FrontendStats`] keeps
    /// its historical field set; `rejected` counts queue-full rejections).
    pub fn stats(&self) -> FrontendStats {
        FrontendStats {
            served: self.served,
            flushes: self.flushes,
            rejected: self.rejected_full,
            scorer_errors: self.scorer_errors,
        }
    }
}

/// The shared tallies behind both [`StatsSnapshot`] and the shutdown
/// [`FrontendStats`]: plain per-front-end atomics, updated on the
/// admission and worker paths with relaxed ordering (each field is an
/// independent monotone tally or gauge; cross-field consistency is not
/// promised and not needed).
struct FrontendLive {
    admitted: AtomicU64,
    served: AtomicU64,
    flushes: AtomicU64,
    rejected_full: AtomicU64,
    rejected_shutdown: AtomicU64,
    scorer_errors: AtomicU64,
    dropped: AtomicU64,
    in_flight: AtomicU64,
    queue_depth: AtomicU64,
    queue_hwm: AtomicU64,
    interactions: AtomicU64,
    graduations: AtomicU64,
    swaps: AtomicU64,
    update_errors: AtomicU64,
    worker_alive: AtomicBool,
    scorer_ready: AtomicBool,
    health_registered: AtomicBool,
}

impl FrontendLive {
    fn new() -> FrontendLive {
        FrontendLive {
            admitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            scorer_errors: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
            interactions: AtomicU64::new(0),
            graduations: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            update_errors: AtomicU64::new(0),
            worker_alive: AtomicBool::new(true),
            scorer_ready: AtomicBool::new(false),
            health_registered: AtomicBool::new(false),
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            scorer_errors: self.scorer_errors.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_hwm: self.queue_hwm.load(Ordering::Relaxed),
            interactions: self.interactions.load(Ordering::Relaxed),
            graduations: self.graduations.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            update_errors: self.update_errors.load(Ordering::Relaxed),
            worker_alive: self.worker_alive.load(Ordering::Relaxed),
            scorer_ready: self.scorer_ready.load(Ordering::Relaxed),
        }
    }

    fn sub_in_flight(&self, n: usize) {
        let _ = self
            .in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n as u64))
            });
    }
}

/// Cached handles into the process-global [`om_obs::live`] plane that
/// mirrors the per-front-end tallies for `/metrics` (with several
/// front-ends in one process — tests, mostly — the global series sum
/// over them; [`StatsSnapshot`] stays per-front-end).
#[derive(Clone)]
struct Mirror {
    admitted: om_obs::live::LiveCounter,
    served: om_obs::live::LiveCounter,
    flushes: om_obs::live::LiveCounter,
    rejected: om_obs::live::LiveCounter,
    rejected_shutdown: om_obs::live::LiveCounter,
    scorer_errors: om_obs::live::LiveCounter,
    interactions: om_obs::live::LiveCounter,
    in_flight: om_obs::live::LiveGauge,
    queue_depth: om_obs::live::LiveGauge,
    queue_hwm: om_obs::live::LiveGauge,
}

impl Mirror {
    fn new() -> Mirror {
        Mirror {
            admitted: om_obs::live::counter("serve.frontend.admitted"),
            served: om_obs::live::counter("serve.frontend.served"),
            flushes: om_obs::live::counter("serve.frontend.flushes"),
            rejected: om_obs::live::counter("serve.frontend.rejected"),
            rejected_shutdown: om_obs::live::counter("serve.frontend.rejected_shutdown"),
            scorer_errors: om_obs::live::counter("serve.frontend.scorer_errors"),
            interactions: om_obs::live::counter("serve.frontend.interactions"),
            in_flight: om_obs::live::gauge("serve.frontend.in_flight"),
            queue_depth: om_obs::live::gauge("serve.frontend.queue_depth"),
            queue_hwm: om_obs::live::gauge("serve.frontend.queue_hwm"),
        }
    }
}

/// An accepted request plus its admission stamps. Internal: the public
/// [`Request`] is unchanged; stamps ride alongside it through the queue
/// and the (generic) microbatcher, which provably cannot change a flush
/// boundary based on them.
struct Tracked {
    req: Request,
    /// Monotone admission sequence number, 1-based, gap-free (assigned
    /// under the admission gate, only on successful enqueue).
    seq: u64,
    /// Clock at admission (ns since the process anchor).
    admit_ns: u64,
    /// Clock when the worker dequeued it; stamped by the worker.
    dequeue_ns: u64,
}

enum Msg {
    Req(Tracked),
    /// A streamed interaction for the online graduation path. Events ride
    /// the same bounded FIFO as requests, so an event and the requests
    /// around it are applied in exactly the order they were accepted —
    /// and admission control sheds interactions the same way it sheds
    /// requests.
    Event(UserEvent),
    Stop,
}

/// Lock the admission gate, recovering from a poisoned mutex: the gate
/// holds a plain `bool`, which cannot be left in a torn state, so the
/// poison flag carries no information here.
fn gate_lock(gate: &Mutex<bool>) -> MutexGuard<'_, bool> {
    match gate.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A producer's handle: clone freely, submit from any thread.
#[derive(Clone)]
pub struct FrontendHandle {
    tx: SyncSender<Msg>,
    capacity: usize,
    live: Arc<FrontendLive>,
    mirror: Mirror,
    /// The admission gate: once `shutdown` sets it, no further request
    /// can enter the channel, so the stop marker is provably last.
    closed: Arc<Mutex<bool>>,
}

impl FrontendHandle {
    /// Try to enqueue `req`. Never blocks: a full queue or a stopped
    /// worker returns a typed error immediately. The send happens under
    /// the admission gate so it cannot land behind the stop marker
    /// (`try_send` on a bounded channel with free space never blocks, so
    /// the critical section is a check plus an enqueue). Accepted
    /// requests are stamped here: admission sequence number and clock.
    pub fn try_send(&self, req: Request) -> Result<(), SubmitError> {
        let closed = gate_lock(&self.closed);
        if *closed {
            self.live.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            self.mirror.rejected_shutdown.add(1);
            return Err(SubmitError::Shutdown);
        }
        let admit_ns = om_obs::clock::now_ns();
        // All senders hold the gate, so load-then-store is race-free and
        // the sequence stays gap-free: a seq is consumed only on accept.
        let seq = self.live.admitted.load(Ordering::Relaxed) + 1;
        let tracked = Tracked { req, seq, admit_ns, dequeue_ns: 0 };
        // The depth gauge must go up *before* the send: once the message
        // is in the channel the worker may dequeue-and-decrement it at any
        // moment, and an increment landing after that decrement would wrap
        // the gauge below zero. A rejected send rolls its increment back.
        self.live.queue_depth.fetch_add(1, Ordering::Relaxed);
        self.mirror.queue_depth.inc();
        match self.tx.try_send(Msg::Req(tracked)) {
            Ok(()) => {
                self.live.admitted.store(seq, Ordering::Relaxed);
                self.live.in_flight.fetch_add(1, Ordering::Relaxed);
                let depth = self.live.queue_depth.load(Ordering::Relaxed);
                self.live.queue_hwm.fetch_max(depth, Ordering::Relaxed);
                self.mirror.admitted.add(1);
                self.mirror.in_flight.inc();
                self.mirror.queue_hwm.raise(depth);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.live.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.mirror.queue_depth.dec();
                self.live.rejected_full.fetch_add(1, Ordering::Relaxed);
                self.mirror.rejected.add(1);
                om_obs::metrics::counter("serve.frontend.rejected").add(1);
                om_obs::flightrec::record(FlightRecord {
                    seq: 0,
                    req_id: req.id,
                    user: u64::from(req.user.0),
                    event: "rejected",
                    t_ns: admit_ns,
                    stages: Vec::new(),
                    detail: String::new(),
                });
                Err(SubmitError::QueueFull { capacity: self.capacity })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.live.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.mirror.queue_depth.dec();
                self.live.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                self.mirror.rejected_shutdown.add(1);
                Err(SubmitError::Shutdown)
            }
        }
    }

    /// Try to enqueue a streamed interaction. Same admission discipline
    /// as [`FrontendHandle::try_send`]: never blocks, rejects typed when
    /// the queue is full or the front-end is shut down, and the send
    /// happens under the admission gate so an accepted event is provably
    /// applied before the worker exits (channel FIFO puts it ahead of the
    /// stop marker). Events occupy queue slots like requests do, but they
    /// are not requests: they don't get a sequence number, a response, or
    /// an `in_flight` entry.
    pub fn submit_interaction(&self, ev: UserEvent) -> Result<(), SubmitError> {
        let closed = gate_lock(&self.closed);
        if *closed {
            self.live.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            self.mirror.rejected_shutdown.add(1);
            return Err(SubmitError::Shutdown);
        }
        // Depth up before the send, same as try_send — the worker may
        // dequeue-and-decrement the moment the message lands.
        self.live.queue_depth.fetch_add(1, Ordering::Relaxed);
        self.mirror.queue_depth.inc();
        match self.tx.try_send(Msg::Event(ev)) {
            Ok(()) => {
                self.live.interactions.fetch_add(1, Ordering::Relaxed);
                self.mirror.interactions.add(1);
                let depth = self.live.queue_depth.load(Ordering::Relaxed);
                self.live.queue_hwm.fetch_max(depth, Ordering::Relaxed);
                self.mirror.queue_hwm.raise(depth);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.live.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.mirror.queue_depth.dec();
                self.live.rejected_full.fetch_add(1, Ordering::Relaxed);
                self.mirror.rejected.add(1);
                Err(SubmitError::QueueFull { capacity: self.capacity })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.live.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.mirror.queue_depth.dec();
                self.live.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                self.mirror.rejected_shutdown.add(1);
                Err(SubmitError::Shutdown)
            }
        }
    }

    /// Submits rejected by admission control so far (shared across
    /// clones).
    pub fn rejected(&self) -> u64 {
        self.live.rejected_full.load(Ordering::Relaxed)
    }

    /// A point-in-time [`StatsSnapshot`], readable at any moment — before,
    /// during or after shutdown (the handle outlives the worker).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.live.snapshot()
    }
}

/// The worker end: owns the scoring thread; [`Frontend::shutdown`] drains
/// and joins it.
pub struct Frontend {
    handle: FrontendHandle,
    worker: std::thread::JoinHandle<()>,
}

impl Frontend {
    /// Spawn the consumer thread. `factory` runs *on the worker* to build
    /// the scorer there (engines are not `Send`); `responses` receives
    /// every scored [`Response`] in flush order. Errors only if the OS
    /// refuses the thread.
    // om-lint: allow(thread-spawn) — this *is* the sanctioned spawn point:
    // the one long-lived consumer thread of the serving front-end.
    pub fn spawn<S, F>(
        factory: F,
        opts: FrontendOptions,
        responses: Sender<Response>,
    ) -> Result<Frontend, ServeError>
    where
        S: BatchScorer,
        F: FnOnce() -> S + Send + 'static,
    {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Msg>(opts.queue_cap.max(1));
        let batch = opts.batch.max(1);
        let wait_us = opts.wait_us;
        let live = Arc::new(FrontendLive::new());
        let mirror = Mirror::new();
        let worker_live = Arc::clone(&live);
        let worker_mirror = mirror.clone();
        let worker = std::thread::Builder::new()
            .name("om-serve-frontend".into())
            // om-lint: allow(thread-spawn) — the front-end consumer is the
            // one long-lived thread the serving shape requires; scoring
            // inside it still fans out over the om_tensor::runtime pool.
            .spawn(move || {
                let live = worker_live;
                let mirror = worker_mirror;
                let scorer = factory();
                live.scorer_ready.store(true, Ordering::Relaxed);
                let mut batcher: Microbatcher<Tracked> = Microbatcher::new(batch, wait_us);
                // All deadlines are relative to the process clock anchor,
                // so the sanctioned monotonic clock suffices.
                let now_us = || om_obs::clock::now_ns() / 1_000;
                // Stage histograms, recorded into both planes: the live
                // seqlock histograms feed `/metrics`, the run-scoped ones
                // feed `events.jsonl` / `obs-report`.
                let q_wait_live = om_obs::live::histogram("serve.queue_wait");
                let q_wait_run = om_obs::metrics::histogram("serve.queue_wait");
                let b_wait_live = om_obs::live::histogram("serve.batch_wait");
                let b_wait_run = om_obs::metrics::histogram("serve.batch_wait");
                let e2e_live = om_obs::live::histogram("serve.e2e");
                let e2e_run = om_obs::metrics::histogram("serve.e2e");
                let flush = |reqs: Vec<Tracked>| {
                    // om-fault: kill-point
                    om_obs::fault::kill_point("scorer");
                    let close_ns = om_obs::clock::now_ns();
                    for t in &reqs {
                        let wait = close_ns.saturating_sub(t.dequeue_ns);
                        b_wait_live.record(wait);
                        b_wait_run.record(wait);
                    }
                    live.flushes.fetch_add(1, Ordering::Relaxed);
                    mirror.flushes.add(1);
                    let plain: Vec<Request> = reqs.iter().map(|t| t.req).collect();
                    match scorer.serve_batch(&plain) {
                        Ok(out) => {
                            let reply_ns = om_obs::clock::now_ns();
                            live.served.fetch_add(out.len() as u64, Ordering::Relaxed);
                            mirror.served.add(out.len() as u64);
                            for (t, resp) in reqs.iter().zip(out) {
                                // A dropped receiver just discards
                                // responses; the worker still drains so
                                // shutdown stays orderly.
                                let _ = responses.send(resp);
                                let e2e = reply_ns.saturating_sub(t.admit_ns);
                                e2e_live.record(e2e);
                                e2e_run.record(e2e);
                                om_obs::flightrec::record(FlightRecord {
                                    seq: t.seq,
                                    req_id: t.req.id,
                                    user: u64::from(t.req.user.0),
                                    event: "served",
                                    t_ns: reply_ns,
                                    stages: vec![
                                        (
                                            "queue_wait_ns",
                                            t.dequeue_ns.saturating_sub(t.admit_ns),
                                        ),
                                        (
                                            "batch_wait_ns",
                                            close_ns.saturating_sub(t.dequeue_ns),
                                        ),
                                        ("e2e_ns", e2e),
                                    ],
                                    detail: String::new(),
                                });
                            }
                        }
                        Err(err) => {
                            live.scorer_errors.fetch_add(1, Ordering::Relaxed);
                            live.dropped.fetch_add(reqs.len() as u64, Ordering::Relaxed);
                            mirror.scorer_errors.add(1);
                            om_obs::error!(
                                "serve: front-end flush of {} request(s) failed: {err}",
                                reqs.len()
                            );
                            om_obs::metrics::counter("serve.frontend.scorer_errors").add(1);
                            let err_ns = om_obs::clock::now_ns();
                            let detail = err.to_string();
                            for t in &reqs {
                                om_obs::flightrec::record(FlightRecord {
                                    seq: t.seq,
                                    req_id: t.req.id,
                                    user: u64::from(t.req.user.0),
                                    event: "scorer_error",
                                    t_ns: err_ns,
                                    stages: vec![(
                                        "queue_wait_ns",
                                        t.dequeue_ns.saturating_sub(t.admit_ns),
                                    )],
                                    detail: detail.clone(),
                                });
                            }
                            // Dump immediately: the postmortem should hold
                            // the state *at* the failure, not at shutdown.
                            let _ = om_obs::flightrec::dump("scorer_error");
                        }
                    }
                    live.sub_in_flight(reqs.len());
                    for _ in 0..reqs.len() {
                        mirror.in_flight.dec();
                    }
                };
                let dequeue = |mut t: Tracked| {
                    t.dequeue_ns = om_obs::clock::now_ns();
                    live.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    mirror.queue_depth.dec();
                    let wait = t.dequeue_ns.saturating_sub(t.admit_ns);
                    q_wait_live.record(wait);
                    q_wait_run.record(wait);
                    t
                };
                // Apply one streamed interaction. Pending microbatch
                // entries are *not* flushed first: an install only flips
                // what future pins observe, so requests batched across an
                // event still score against exactly one generation — the
                // one their flush pins.
                let apply = |ev: UserEvent| {
                    live.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    mirror.queue_depth.dec();
                    match scorer.apply_event(&ev) {
                        Ok(Some(outcome)) => {
                            if outcome.graduated {
                                live.graduations.fetch_add(1, Ordering::Relaxed);
                            }
                            if outcome.generation.is_some() {
                                live.swaps.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(None) => {}
                        Err(err) => {
                            live.update_errors.fetch_add(1, Ordering::Relaxed);
                            om_obs::error!(
                                "serve: online update for user {} failed \
                                 (old generation keeps serving): {err}",
                                ev.user.0
                            );
                        }
                    }
                };
                loop {
                    let timeout = if batcher.pending() > 0 {
                        let deadline = batcher.oldest_us().saturating_add(wait_us);
                        Duration::from_micros(deadline.saturating_sub(now_us()))
                    } else {
                        // Idle: nothing is pending, so nothing can time
                        // out; wake occasionally to stay responsive to a
                        // dropped producer side.
                        Duration::from_millis(50)
                    };
                    match rx.recv_timeout(timeout) {
                        Ok(Msg::Req(t)) => {
                            let t = dequeue(t);
                            let arrived_us = t.dequeue_ns / 1_000;
                            if let Some(batch) = batcher.submit(t, arrived_us) {
                                flush(batch);
                            }
                        }
                        Ok(Msg::Event(ev)) => apply(ev),
                        Ok(Msg::Stop) => break,
                        Err(RecvTimeoutError::Timeout) => {
                            if let Some(batch) = batcher.poll(now_us()) {
                                flush(batch);
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                // The admission gate means nothing can follow the stop
                // marker; this sweep is belt-and-braces for the
                // disconnected-exit path.
                loop {
                    match rx.try_recv() {
                        Ok(Msg::Req(t)) => {
                            let t = dequeue(t);
                            let arrived_us = t.dequeue_ns / 1_000;
                            if let Some(batch) = batcher.submit(t, arrived_us) {
                                flush(batch);
                            }
                        }
                        Ok(Msg::Event(ev)) => apply(ev),
                        Ok(Msg::Stop) | Err(_) => break,
                    }
                }
                if let Some(rest) = batcher.drain() {
                    flush(rest);
                }
                om_obs::metrics::counter("serve.frontend.served")
                    .add(live.served.load(Ordering::Relaxed));
                live.worker_alive.store(false, Ordering::Relaxed);
            })
            .map_err(|err| ServeError::WorkerSpawn(err.to_string()))?;
        let handle = FrontendHandle {
            tx,
            capacity: opts.queue_cap.max(1),
            live,
            mirror,
            closed: Arc::new(Mutex::new(false)),
        };
        Ok(Frontend { handle, worker })
    }

    /// A producer handle (clone per producer thread).
    pub fn handle(&self) -> FrontendHandle {
        self.handle.clone()
    }

    /// A point-in-time [`StatsSnapshot`] (see
    /// [`FrontendHandle::stats_snapshot`]).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.handle.stats_snapshot()
    }

    /// Register this front-end's readiness probes with the
    /// [`om_obs::http`] `/healthz` endpoint: `serve.scorer_ready` (the
    /// factory finished — model loaded and item arena mapped, for engine
    /// scorers), `serve.worker_alive`, and `serve.queue_room` (the
    /// bounded queue is below capacity, i.e. admission control is not
    /// currently shedding). [`Frontend::shutdown`] deregisters them.
    pub fn register_health(&self) {
        self.handle.live.health_registered.store(true, Ordering::Relaxed);
        let ready = Arc::clone(&self.handle.live);
        om_obs::http::set_health(
            "serve.scorer_ready",
            Box::new(move || ready.scorer_ready.load(Ordering::Relaxed)),
        );
        let alive = Arc::clone(&self.handle.live);
        om_obs::http::set_health(
            "serve.worker_alive",
            Box::new(move || alive.worker_alive.load(Ordering::Relaxed)),
        );
        let depth = Arc::clone(&self.handle.live);
        let cap = self.handle.capacity as u64;
        om_obs::http::set_health(
            "serve.queue_room",
            Box::new(move || depth.queue_depth.load(Ordering::Relaxed) < cap),
        );
    }

    /// Stop accepting work, drain everything already accepted, join the
    /// worker, and return the tallies. Closing the admission gate first
    /// and *then* enqueueing the stop marker guarantees the marker queues
    /// behind every accepted request — none are dropped. If any flush
    /// errored, the flight recorder is dumped as a postmortem. Errors
    /// only if the worker itself panicked.
    pub fn shutdown(self) -> Result<FrontendStats, ServeError> {
        {
            let mut closed = gate_lock(&self.handle.closed);
            *closed = true;
        }
        // A blocking send: waits for queue space behind the accepted
        // backlog. If the worker already exited (disconnected), join
        // anyway.
        let _ = self.handle.tx.send(Msg::Stop);
        self.worker.join().map_err(|_| ServeError::WorkerPanicked)?;
        if self.handle.live.health_registered.swap(false, Ordering::Relaxed) {
            om_obs::http::clear_health("serve.scorer_ready");
            om_obs::http::clear_health("serve.worker_alive");
            om_obs::http::clear_health("serve.queue_room");
        }
        let snap = self.handle.stats_snapshot();
        if snap.scorer_errors > 0 {
            let _ = om_obs::flightrec::dump("shutdown_with_errors");
        }
        Ok(snap.stats())
    }
}
