//! CI smoke test for the live serving telemetry plane: train a tiny
//! model, serve it through the threaded front-end with the stats endpoint
//! up, then scrape `/metrics`, `/healthz` and `/statz` over real TCP and
//! assert the five per-request stage histograms and the admission
//! counters are present and consistent.
//!
//! The scraped bodies are written into the run's artifact directory
//! (`metrics.txt`, `healthz.txt`, `statz.json`) and the directory is the
//! last stdout line, so CI can upload the scrape alongside
//! `events.jsonl`.
//!
//! This binary is also the chaos target for the flight recorder:
//! `OM_FAULT=scorer:2` kills it on the second microbatch flush, which
//! dumps `flightrec.jsonl` (the last N per-request records) into the run
//! directory before exiting 86 — `crates/experiments/tests/obs_chaos.rs`
//! asserts that postmortem from the outside.
//!
//! The endpoint binds `OM_OBS_ADDR` when set, else an ephemeral loopback
//! port. Usage: `serve_obs_smoke [checkpoint_path]`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_obs::http::StatsServer;
use om_serve::{
    load_model_file, Frontend, FrontendOptions, Request, ServeEngine, ServeOptions,
};
use om_tensor::seeded_rng;
use omnimatch_core::{CorpusViews, OmniMatchConfig, Trainer};

/// One blocking HTTP/1.0 GET against the stats endpoint; returns
/// `(status line, body)`.
fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect stats endpoint");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a header block");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

fn main() {
    om_obs::set_enabled(true);
    assert!(om_obs::run_begin("serve_obs_smoke"), "serve_obs_smoke must own the run");
    let ckpt_path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("serve_obs_smoke.omck"));

    // ---- train + export --------------------------------------------------
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let cfg = OmniMatchConfig::fast().with_seed(7);
    let trained = Trainer::new(cfg.clone()).fit(&scenario);
    trained.write_checkpoint(&ckpt_path).expect("write checkpoint");
    let users = trained.views().users().to_vec();
    let vocab_size = trained.views().vocab.len();
    drop(trained);
    om_obs::manifest_set("serve.users", (users.len() as u64).into());

    // ---- front-end + stats endpoint --------------------------------------
    let (resp_tx, resp_rx) = channel();
    let factory_ckpt = ckpt_path.clone();
    // om-lint: allow(thread-spawn) — the front-end consumer thread is the
    // serving shape under smoke; the factory reloads the checkpoint there
    // (the real deployment path — engines are built on the worker).
    let fe = Frontend::spawn(
        move || {
            let model =
                load_model_file(&cfg, vocab_size, &factory_ckpt).expect("reload checkpoint");
            let views = CorpusViews::build(&scenario, &cfg, &mut seeded_rng(cfg.seed));
            let warm = scenario.train_users.clone();
            ServeEngine::new(model, views, &warm, ServeOptions::default())
        },
        FrontendOptions { queue_cap: 256, batch: 8, wait_us: 200 },
        resp_tx,
    )
    .expect("spawn front-end");
    fe.register_health();

    let server = StatsServer::spawn_from_env().unwrap_or_else(|| {
        // om-lint: allow(thread-spawn) — no OM_OBS_ADDR: the smoke still
        // needs an endpoint, so bind an ephemeral loopback port.
        StatsServer::spawn("127.0.0.1:0").expect("bind loopback stats endpoint")
    });
    let addr = server.local_addr();
    om_obs::info!("serve obs smoke: stats endpoint on {addr}");

    // ---- drive a request stream ------------------------------------------
    let handle = fe.handle();
    let rounds = 3u64;
    let mut sent = 0u64;
    for round in 0..rounds {
        for (i, &user) in users.iter().enumerate() {
            let id = round * users.len() as u64 + i as u64;
            // The queue outlives any burst here; every submit must land.
            while handle.try_send(Request { id, user, arrive_us: 0 }).is_err() {
                std::thread::sleep(Duration::from_millis(1));
            }
            sent += 1;
        }
    }
    // om-lint: nondeterminism-ok(wall-clock timeout around a real
    // threaded front-end; nothing model-facing depends on it)
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.stats_snapshot().served < sent {
        // om-lint: nondeterminism-ok(same liveness timeout as above)
        assert!(Instant::now() < deadline, "front-end did not serve {sent} requests in time");
        std::thread::sleep(Duration::from_millis(1));
    }

    // ---- scrape and assert -----------------------------------------------
    let (status, metrics) = get(addr, "/metrics");
    assert!(status.contains("200"), "/metrics: {status}");
    for hist in
        ["serve_queue_wait", "serve_batch_wait", "serve_score", "serve_merge", "serve_e2e"]
    {
        assert!(
            metrics.contains(&format!("# TYPE {hist} histogram")),
            "/metrics is missing the `{hist}` stage histogram:\n{metrics}"
        );
        assert!(metrics.contains(&format!("{hist}_count")), "no `{hist}_count`:\n{metrics}");
    }
    for counter in ["serve_frontend_admitted", "serve_frontend_rejected", "serve_frontend_served"]
    {
        assert!(metrics.contains(counter), "/metrics is missing `{counter}`:\n{metrics}");
    }
    assert!(
        metrics.contains(&format!("serve_frontend_served {sent}")),
        "served counter must read {sent}:\n{metrics}"
    );

    let (status, healthz) = get(addr, "/healthz");
    assert!(status.contains("200"), "/healthz while serving: {status}\n{healthz}");
    for probe in ["serve.scorer_ready ok", "serve.worker_alive ok", "serve.queue_room ok"] {
        assert!(healthz.contains(probe), "/healthz is missing `{probe}`:\n{healthz}");
    }

    let (status, statz) = get(addr, "/statz");
    assert!(status.contains("200"), "/statz: {status}");
    let json = om_obs::json::Json::parse(statz.trim()).expect("/statz parses as JSON");
    assert_eq!(
        json.get("serve.frontend.served").and_then(om_obs::json::Json::as_u64),
        Some(sent),
        "/statz served counter must read {sent}"
    );

    // The live snapshot and the shutdown stats read the same atomics.
    let snap = fe.stats_snapshot();
    let stats = fe.shutdown().expect("shutdown front-end");
    assert_eq!(snap.stats(), stats, "snapshot and shutdown stats diverged");
    assert_eq!(stats.served, sent);
    assert_eq!(stats.scorer_errors, 0);
    assert_eq!(resp_rx.iter().count() as u64, sent, "every request got a response");

    // Once the front-end deregisters its probes, /healthz turns green-empty.
    let (status, _) = get(addr, "/healthz");
    assert!(status.contains("200"), "/healthz after shutdown: {status}");
    server.shutdown();
    om_obs::manifest_set("serve.smoke_ok", true.into());

    // ---- artifacts --------------------------------------------------------
    let dir = om_obs::run_finish().expect("run artifacts written");
    std::fs::write(dir.join("metrics.txt"), &metrics).expect("write metrics.txt");
    std::fs::write(dir.join("healthz.txt"), &healthz).expect("write healthz.txt");
    std::fs::write(dir.join("statz.json"), &statz).expect("write statz.json");
    let _ = std::fs::remove_file(&ckpt_path);
    // Machine-readable: CI captures this line to locate the artifact.
    println!("{}", dir.display());
}
