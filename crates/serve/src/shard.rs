//! Sharded catalogue scoring — the million-item form of the engine.
//!
//! A single `pair_rows` cross join materialises `B·N` pair rows before
//! the rating head runs; at `N` in the millions that buffer alone is
//! gigabytes. [`ShardedEngine`] partitions the item arena into fixed-width
//! shards of [`ServeOptions::shard_items`] rows and scores one shard at a
//! time: cross join, rating-head forward (each GEMM still fans out across
//! the `om_tensor::runtime` worker pool), then a *per-shard* top-K through
//! the same bounded worst-out heap the offline tables use. Per-shard
//! winners — at most `k` per shard, tagged with their global arena row —
//! are merged by [`om_metrics::merge_top_k`] into the final top-K.
//!
//! Bitwise parity with [`ServeEngine`] is a theorem, not a tuning goal:
//!
//! * every kernel in the forward is row-independent with a fixed
//!   per-element reduction order, so an item's score does not depend on
//!   which shard (or batch) it was computed in;
//! * top-K uses a strict total order (`cmp_nan_last_desc`, ties by
//!   ascending arena row), under which each shard's top-`k` is a superset
//!   of that shard's contribution to the global top-`k`, so merging
//!   per-shard winners loses nothing.
//!
//! `tests/sharded_diff.rs` property-tests the equality — bit for bit,
//! NaNs and ties included — across random catalogue sizes, shard widths,
//! `k`, and thread counts.

use om_data::types::UserId;
use om_tensor::{kernels, seeded_rng, Tensor};

use crate::engine::{Request, Response, ServeEngine};
use crate::error::ServeError;

/// A [`ServeEngine`] that scores the catalogue shard by shard. Same
/// requests in, bitwise-identical responses out; only the peak pair-buffer
/// footprint changes (`B · shard_items · pair_dim` floats instead of
/// `B · N · pair_dim`).
pub struct ShardedEngine {
    inner: ServeEngine,
    shard_items: usize,
}

impl ShardedEngine {
    /// Wrap `engine`, scoring `engine.options().shard_items` rows per
    /// shard (clamped to at least 1).
    pub fn new(engine: ServeEngine) -> ShardedEngine {
        let shard_items = engine.opts.shard_items.max(1);
        om_obs::info!(
            "serve: sharded engine — {} items in {} shards of {}",
            engine.items.len(),
            engine.items.len().div_ceil(shard_items.max(1)).max(1),
            shard_items
        );
        ShardedEngine { inner: engine, shard_items }
    }

    /// The wrapped single-arena engine (the parity oracle).
    pub fn inner(&self) -> &ServeEngine {
        &self.inner
    }

    /// Item rows per shard.
    pub fn shard_items(&self) -> usize {
        self.shard_items
    }

    /// Change the shard width — a pure performance knob that cannot move
    /// a result bit, which is exactly what the differential suite sweeps
    /// it to prove.
    pub fn set_shard_items(&mut self, width: usize) {
        self.shard_items = width.max(1);
    }

    /// Number of shards the catalogue splits into.
    pub fn shard_count(&self) -> usize {
        self.inner.items.len().div_ceil(self.shard_items).max(1)
    }

    /// Number of items in the arena (the catalogue being ranked).
    pub fn catalogue_len(&self) -> usize {
        self.inner.catalogue_len()
    }

    /// Is this user served from the warm-user cache?
    pub fn is_warm(&self, user: UserId) -> bool {
        self.inner.is_warm(user)
    }

    /// Ingest one streamed interaction — delegates to
    /// [`ServeEngine::apply_event`]; both engines share the one
    /// generation pointer, so a swap published here is what the next
    /// sharded batch pins.
    pub fn apply_event(
        &self,
        ev: &crate::update::UserEvent,
    ) -> Result<crate::update::UpdateOutcome, ServeError> {
        self.inner.apply_event(ev)
    }

    /// Serve one request through the sharded path.
    pub fn serve_one(&self, req: Request) -> Result<Response, ServeError> {
        self.serve_batch(std::slice::from_ref(&req))?
            .pop()
            .ok_or(ServeError::ScoreShape { expected: 1, got: 0 })
    }

    /// Serve a microbatch: per shard, one fused forward and a bounded
    /// top-K per request; then one merge per request.
    pub fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let t0 = om_obs::clock::now_ns();
        let _mode = om_nn::inference_mode();
        let items = &self.inner.items;
        let item_dim = items.dim();
        if items.is_empty() || item_dim == 0 {
            return Err(ServeError::EmptyArena);
        }
        // One pinned user-arena generation for the whole batch — the
        // no-mixed-generation rule the single-arena engine also follows.
        let pinned = self.inner.pin_users();
        let users = pinned.arena();
        let user_dim = users.dim();
        let pair_dim = user_dim + item_dim;
        let k = self.inner.opts.topk;

        let user_rows = self.inner.user_rows_for(reqs, users);

        // Per-request candidate pools: ≤ k winners per shard, tagged with
        // the global arena row so the merge's tie order matches the
        // single-arena engine's.
        let mut candidates: Vec<Vec<(f32, usize)>> = vec![Vec::new(); reqs.len()];
        // `rows_f32` borrows the arena for f32 payloads and dequantizes
        // the shard's int8 rows into the scratch for quantized ones.
        let mut scratch = Vec::new();
        for shard in 0..items.len().div_ceil(self.shard_items) {
            let base = shard * self.shard_items;
            let hi = (base + self.shard_items).min(items.len());
            let rows = items.rows_f32(base, hi, &mut scratch);
            let sn = hi - base;
            let pairs = kernels::pair_rows(&user_rows, rows, user_dim, item_dim);
            let pairs = Tensor::from_vec(pairs, &[reqs.len() * sn, pair_dim]);
            // Inference mode: nothing is drawn from this RNG.
            let mut rng = seeded_rng(0);
            let logits = self
                .inner
                .model
                .rating_logits_from_pairs(&pairs, false, &mut rng);
            let stars = omnimatch_core::OmniMatchModel::expected_stars(&logits);
            if stars.len() != reqs.len() * sn {
                return Err(ServeError::ScoreShape {
                    expected: reqs.len() * sn,
                    got: stars.len(),
                });
            }
            for (pool, row) in candidates.iter_mut().zip(stars.chunks(sn)) {
                pool.extend(
                    om_metrics::top_k_indices(row, k)
                        .into_iter()
                        .filter_map(|i| row.get(i).map(|&s| (s, base + i))),
                );
            }
        }

        let t_scored = om_obs::clock::now_ns();
        let out: Vec<Response> = reqs
            .iter()
            .zip(candidates)
            .map(|(&req, pool)| {
                let top = om_metrics::merge_top_k(pool, k)
                    .into_iter()
                    .map(|(score, i)| (items.id_at(i), score))
                    .collect();
                Response { id: req.id, user: req.user, top }
            })
            .collect();
        let t_merged = om_obs::clock::now_ns();
        om_obs::metrics::counter("serve.shard.requests").add(reqs.len() as u64);
        om_obs::metrics::counter("serve.shard.flushes").add(1);
        om_obs::metrics::histogram("serve.shard.flush_ns").record(t_merged.saturating_sub(t0));
        // Stage attribution (same series the single-arena engine feeds):
        // score = the per-shard forwards + per-shard top-K, merge = the
        // final per-request merge_top_k pass.
        let score_ns = t_scored.saturating_sub(t0);
        let merge_ns = t_merged.saturating_sub(t_scored);
        om_obs::metrics::histogram("serve.score").record(score_ns);
        om_obs::live::histogram("serve.score").record(score_ns);
        om_obs::metrics::histogram("serve.merge").record(merge_ns);
        om_obs::live::histogram("serve.merge").record(merge_ns);
        Ok(out)
    }

    /// Expected-star scores of `user` against the whole arena, in arena
    /// order, assembled shard by shard — bitwise equal to
    /// [`ServeEngine::score_user`].
    pub fn score_user(&self, user: UserId) -> Result<Vec<f32>, ServeError> {
        let _mode = om_nn::inference_mode();
        let items = &self.inner.items;
        let item_dim = items.dim();
        if items.is_empty() || item_dim == 0 {
            return Err(ServeError::EmptyArena);
        }
        let pinned = self.inner.pin_users();
        let users = pinned.arena();
        let user_dim = users.dim();
        let pair_dim = user_dim + item_dim;
        let req = [Request { id: 0, user, arrive_us: 0 }];
        let user_rows = self.inner.user_rows_for(&req, users);
        let mut scores = Vec::with_capacity(items.len());
        let mut scratch = Vec::new();
        for shard in 0..items.len().div_ceil(self.shard_items) {
            let base = shard * self.shard_items;
            let hi = (base + self.shard_items).min(items.len());
            let rows = items.rows_f32(base, hi, &mut scratch);
            let sn = hi - base;
            let pairs = kernels::pair_rows(&user_rows, rows, user_dim, item_dim);
            let pairs = Tensor::from_vec(pairs, &[sn, pair_dim]);
            let mut rng = seeded_rng(0);
            let logits = self
                .inner
                .model
                .rating_logits_from_pairs(&pairs, false, &mut rng);
            scores.extend(omnimatch_core::OmniMatchModel::expected_stars(&logits));
        }
        Ok(scores)
    }
}
