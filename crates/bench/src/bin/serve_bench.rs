//! Serving benchmark: replays a synthetic request trace through the
//! microbatching engine and writes `BENCH_serve.json`.
//!
//! Trace construction, the virtual-clock replay loop, and the summary
//! schema live in `om_bench::replay`, shared with `load_bench` (the
//! million-user sharded variant); this binary keeps the small-catalogue
//! single-arena measurement the committed baseline tracks. Latency
//! percentiles come from an `om_obs` histogram; exact f64 samples feed
//! the `bench_json`-schema summaries that `bench_gate` compares.
//!
//! Usage: `cargo run --release -p om-bench --bin serve_bench [out_dir]`.

use std::collections::BTreeMap;
use std::time::Instant;

use om_bench::bench_scenario;
use om_bench::replay::{build_trace, replay_trace, summarize, Arrival};
use om_obs::json::Json;
use om_obs::metrics::histogram;
use om_serve::{ServeEngine, ServeOptions};
use omnimatch_core::{OmniMatchConfig, Trainer};

const REQUESTS: usize = 400;
/// Mean virtual inter-arrival gap; ~1/3 of the batcher deadline so most
/// flushes fill up and a tail flushes on the deadline — both paths hot.
const MEAN_GAP_US: u64 = 650;
/// Trace replays: one discarded warmup, then this many measured. Flush
/// compute is tens of microseconds, so medians need the pooled samples
/// to be stable enough for the regression gate.
const REPLAYS: usize = 3;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    std::fs::create_dir_all(&out_dir).expect("create benchmark output dir");

    // ---- model + engine -------------------------------------------------
    let scenario = bench_scenario();
    let trained = Trainer::new(OmniMatchConfig::fast().with_seed(5)).fit(&scenario);
    let warm = scenario.train_users.clone();
    let (model, views, _) = trained.into_parts();
    let users = views.users().to_vec();

    let t0 = Instant::now();
    let opts = ServeOptions::from_env().expect("serve env misconfigured");
    let engine = ServeEngine::new(model, views, &warm, opts.clone());
    let arena_ms = t0.elapsed().as_secs_f64() * 1e3;

    // ---- trace + replay --------------------------------------------------
    let trace = build_trace(REQUESTS, Arrival::Jittered { mean_gap_us: MEAN_GAP_US }, |h| {
        users[(h >> 32) as usize % users.len()]
    });
    let outcome = replay_trace(
        &engine,
        &trace,
        opts.batch,
        opts.wait_us,
        REPLAYS,
        "serve.request_latency_ns",
    );

    // ---- report ----------------------------------------------------------
    let qps = outcome.served as f64 / outcome.compute_s;
    let lat = histogram("serve.request_latency_ns");
    let q = |p: f64| lat.quantile(p).unwrap_or(0) as f64 / 1e6;
    let mut serve = BTreeMap::new();
    serve.insert("requests".to_string(), Json::Num(outcome.served as f64));
    serve.insert("flushes".to_string(), Json::Num(outcome.flush_ms.len() as f64));
    serve.insert("batch".to_string(), Json::Num(opts.batch as f64));
    serve.insert("wait_us".to_string(), Json::Num(opts.wait_us as f64));
    serve.insert("catalogue".to_string(), Json::Num(engine.catalogue_len() as f64));
    serve.insert("qps".to_string(), Json::Num(qps));
    serve.insert("p50_ms".to_string(), Json::Num(q(0.50)));
    serve.insert("p95_ms".to_string(), Json::Num(q(0.95)));
    serve.insert("p99_ms".to_string(), Json::Num(q(0.99)));
    serve.insert("arena_build_ms".to_string(), Json::Num(arena_ms));

    let mut o = BTreeMap::new();
    o.insert("schema".to_string(), Json::Num(1.0));
    o.insert("group".to_string(), Json::Str("serve".to_string()));
    o.insert("unit".to_string(), Json::Str("ms".to_string()));
    o.insert(
        "benches".to_string(),
        Json::Arr(vec![
            summarize("serve_flush_compute", outcome.flush_ms),
            summarize("serve_request_latency", outcome.latency_ms),
        ]),
    );
    o.insert("serve".to_string(), Json::Obj(serve));

    let path = out_dir.join("BENCH_serve.json");
    std::fs::write(&path, format!("{}\n", Json::Obj(o))).expect("write benchmark report");
    println!("wrote {path} ({qps:.0} qps)", path = path.display());
}
