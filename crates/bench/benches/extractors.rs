//! Feature-extractor cost: TextCNN vs the transformer used by the
//! `OmniMatch-BERT` ablation, forward and forward+backward.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_nn::{HasParams, TextCnn, TransformerEncoder};
use om_tensor::{init, seeded_rng};

const EMB: usize = 24;
const LEN: usize = 48;

fn bench_forward(c: &mut Criterion) {
    let mut rng = seeded_rng(1);
    let cnn = TextCnn::new(EMB, &[3, 4, 5], 24, &mut rng);
    let tf = TransformerEncoder::new(EMB, 2, 48, 1, LEN, &mut rng);
    let mut group = c.benchmark_group("extractor/forward");
    group.sample_size(20);
    for batch in [16usize, 64] {
        let x = init::normal(&[batch, LEN, EMB], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("textcnn", batch), &batch, |b, _| {
            b.iter(|| std::hint::black_box(cnn.forward(&x)))
        });
        group.bench_with_input(BenchmarkId::new("transformer", batch), &batch, |b, _| {
            b.iter(|| std::hint::black_box(tf.forward(&x)))
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut rng = seeded_rng(2);
    let cnn = TextCnn::new(EMB, &[3, 4, 5], 24, &mut rng);
    let tf = TransformerEncoder::new(EMB, 2, 48, 1, LEN, &mut rng);
    let x = init::normal(&[32, LEN, EMB], 1.0, &mut rng);
    let mut group = c.benchmark_group("extractor/forward_backward");
    group.sample_size(20);
    group.bench_function("textcnn", |b| {
        b.iter(|| {
            cnn.zero_grad();
            cnn.forward(&x).square().mean_all().backward();
        })
    });
    group.bench_function("transformer", |b| {
        b.iter(|| {
            tf.zero_grad();
            tf.forward(&x).square().mean_all().backward();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_forward, bench_backward);
criterion_main!(benches);
