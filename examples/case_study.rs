//! Auxiliary-review generation walk-through (the §5.10 case study) via the
//! public API: pick a cold-start user, trace Algorithm 1 step by step, and
//! compare the generated document against the user's hidden ground-truth
//! reviews.

use omnimatch::core::AuxiliaryReviewGenerator;
use omnimatch::data::types::TextField;
use omnimatch::data::{SplitConfig, SynthConfig, SynthWorld};
use omnimatch::tensor::seeded_rng;

fn main() {
    let world = SynthWorld::generate(SynthConfig::amazon(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let generator = AuxiliaryReviewGenerator::new(&scenario);
    let mut rng = seeded_rng(7);

    // the three cold-start users with the richest source histories
    let mut users = scenario.test_users.clone();
    users.sort_by_key(|&u| std::cmp::Reverse(scenario.source.user_degree(u)));

    for &user in users.iter().take(3) {
        println!("================ cold-start user {user} ================");
        let doc = generator.generate(user, TextField::Summary, &mut rng);
        for step in &doc.steps {
            println!(
                "source {}: {} {:?}  →  donor {} gave {:?}",
                step.source_item,
                step.rating,
                step.source_review,
                step.chosen_user,
                step.aux_review,
            );
        }
        println!("\nauxiliary document: \"{}\"", doc.concatenated());
        let truth: Vec<String> = scenario
            .target_full
            .user_records(user)
            .map(|it| it.summary.clone())
            .collect();
        println!("ground truth (hidden): \"{}\"\n", truth.join(" <sp> "));
    }
}
