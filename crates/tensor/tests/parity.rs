//! Serial/parallel/SIMD parity. Two contracts are enforced here:
//!
//! * **Thread invariance (always bitwise).** Every kernel must produce
//!   bit-identical output at any `set_threads` value — f32 addition is not
//!   associative, so this only holds because the kernels fix their
//!   accumulation order independently of the thread count (see
//!   `om_tensor::kernels`).
//! * **Serial-twin parity (tiered).** The dispatched kernels are compared
//!   against their always-scalar `*_serial` twins. Under scalar dispatch
//!   (`OM_SIMD=off`, or no AVX2) every comparison is bitwise. Under AVX2
//!   dispatch, kernels whose vector port preserves the scalar operation
//!   sequence per element (gemm, elementwise, pair_rows, dequant) stay
//!   bitwise — their registered `ulp_tolerance` is 0 — while reordered
//!   reductions (`sum`) and the polynomial-exp softmax row match within a
//!   measured, margin-padded ULP tolerance ([`ULP_TOLERANCES`]). The
//!   effective tolerance is selected by [`tier_tolerance`].
//!
//! Shapes deliberately include 1×1, 1×N, tall-skinny, wide-short, and
//! odd/prime sizes to hit every ragged-tail branch of the blocked GEMM,
//! the 16/8/scalar column tiles of the AVX2 micro-kernel, and the chunked
//! reductions.

use std::sync::{Mutex, MutexGuard, OnceLock};

use om_tensor::{init, kernels, runtime, seeded_rng, Tensor};

fn thread_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Evaluate `f` under every thread setting and assert all results are
/// bit-identical to the first (serial) one.
fn assert_parity(name: &str, f: impl Fn() -> Vec<f32>) {
    let _guard = thread_lock();
    let mut reference: Option<Vec<u32>> = None;
    for threads in [1usize, 2, 3, 0] {
        let prev = runtime::set_threads(threads);
        let out = bits(&f());
        runtime::set_threads(prev);
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(
                r, &out,
                "{name}: output at set_threads({threads}) differs bitwise from serial"
            ),
        }
    }
}

/// The shape battery every parity test runs over: (m, k, n).
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),       // degenerate
    (1, 1, 64),      // 1×N row
    (1, 97, 1),      // inner-product only
    (257, 3, 2),     // tall-skinny
    (2, 3, 257),     // wide-short
    (5, 7, 3),       // all odd
    (61, 53, 47),    // all prime, below/above row-block boundaries
    (130, 97, 64),   // crosses the 4-row micro-kernel's ragged tail
];

#[test]
fn gemm_parallel_matches_serial_reference_bitwise() {
    for &(m, k, n) in SHAPES {
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37) % 101) as f32 * 0.173 - 8.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 53) % 89) as f32 * 0.211 - 9.0).collect();
        let mut serial = vec![0.0f32; m * n];
        kernels::gemm_serial(&a, &b, &mut serial, m, k, n);
        assert_parity(&format!("gemm {m}x{k}x{n}"), || {
            let mut c = vec![0.0f32; m * n];
            kernels::gemm(&a, &b, &mut c, m, k, n);
            c
        });
        // The parallel entry point must also agree with the naive serial
        // reference, not just with itself.
        let mut c = vec![0.0f32; m * n];
        kernels::gemm(&a, &b, &mut c, m, k, n);
        assert_eq!(bits(&serial), bits(&c), "gemm {m}x{k}x{n} vs serial reference");
    }
}

#[test]
fn gemm_with_zero_rows_matches_serial_bitwise() {
    // Zeros exercise the micro-kernel's zero-product skip; skipping an
    // exact-zero contribution must not change any bit of the result.
    for &(m, k, n) in SHAPES {
        let mut a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        for v in a.iter_mut().step_by(3) {
            *v = 0.0;
        }
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 29) % 31) as f32 * 0.37 - 5.0).collect();
        let mut serial = vec![0.0f32; m * n];
        kernels::gemm_serial(&a, &b, &mut serial, m, k, n);
        let mut c = vec![0.0f32; m * n];
        kernels::gemm(&a, &b, &mut c, m, k, n);
        assert_eq!(bits(&serial), bits(&c), "sparse gemm {m}x{k}x{n}");
    }
}

#[test]
fn full_reduction_is_thread_count_invariant_bitwise() {
    // Lengths straddling the fixed reduction chunk, including primes.
    for len in [1usize, 2, 4095, 4096, 4097, 10_007, 3 * 4096 + 1] {
        let x: Vec<f32> = (0..len).map(|i| ((i * 13) % 97) as f32 * 0.0137 - 0.61).collect();
        let serial = kernels::sum_serial(&x);
        assert_parity(&format!("sum len {len}"), || vec![kernels::sum(&x)]);
        // Vs the scalar twin: bitwise under scalar dispatch, ULP-bounded
        // under AVX2 (the lane-parallel chunk sum reorders additions).
        assert_within_ulp(
            &format!("sum len {len}"),
            tier_tolerance("sum"),
            &[kernels::sum(&x)],
            &[serial],
        );
    }
}

#[test]
fn elementwise_kernels_match_serial_references_bitwise() {
    // Lengths straddle the map-parallelisation grain so both the inline
    // and the pooled code paths are exercised.
    for len in [1usize, 257, 16 * 1024, 3 * 16 * 1024 + 17] {
        let a: Vec<f32> = (0..len).map(|i| ((i * 41) % 113) as f32 * 0.073 - 4.0).collect();
        let b: Vec<f32> = (0..len).map(|i| ((i * 59) % 127) as f32 * 0.057 - 3.5).collect();
        let map_ref = kernels::map_serial(&a, |x| x.exp() - x);
        assert_parity(&format!("map len {len}"), || kernels::map(&a, |x| x.exp() - x));
        assert_eq!(bits(&map_ref), bits(&kernels::map(&a, |x| x.exp() - x)));
        let zip_ref = kernels::zip_map_serial(&a, &b, |x, y| x * y + x);
        assert_parity(&format!("zip_map len {len}"), || {
            kernels::zip_map(&a, &b, |x, y| x * y + x)
        });
        assert_eq!(bits(&zip_ref), bits(&kernels::zip_map(&a, &b, |x, y| x * y + x)));
        let idx_ref = kernels::map_indexed_serial(len, |i| (i % 97) as f32 * 0.31);
        assert_parity(&format!("map_indexed len {len}"), || {
            kernels::map_indexed(len, |i| (i % 97) as f32 * 0.31)
        });
        assert_eq!(bits(&idx_ref), bits(&kernels::map_indexed(len, |i| (i % 97) as f32 * 0.31)));
    }
}

#[test]
fn transpose_and_fill_rows_match_serial_references_bitwise() {
    for &(m, n) in &[(1usize, 1usize), (7, 5), (173, 111), (257, 129)] {
        let x: Vec<f32> = (0..m * n).map(|i| ((i * 31) % 101) as f32 * 0.019 - 0.9).collect();
        let t_ref = kernels::transpose_serial(&x, m, n);
        assert_parity(&format!("transpose {m}x{n}"), || kernels::transpose(&x, m, n));
        assert_eq!(bits(&t_ref), bits(&kernels::transpose(&x, m, n)));
        let fill = |r: usize, row: &mut [f32]| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (r * 13 + j) as f32 * 0.5;
            }
        };
        let f_ref = kernels::fill_rows_serial(m, n, fill);
        assert_parity(&format!("fill_rows {m}x{n}"), || kernels::fill_rows(m, n, 2, fill));
        assert_eq!(bits(&f_ref), bits(&kernels::fill_rows(m, n, 2, fill)));
    }
}

#[test]
fn tensor_matmul_is_thread_count_invariant_bitwise() {
    for &(m, k, n) in SHAPES {
        let a = init::uniform(&[m, k], -1.0, 1.0, &mut seeded_rng(m as u64 * 7 + 1));
        let b = init::uniform(&[k, n], -1.0, 1.0, &mut seeded_rng(n as u64 * 11 + 2));
        assert_parity(&format!("tensor matmul {m}x{k}x{n}"), || {
            a.matmul(&b).to_vec()
        });
    }
}

#[test]
fn tensor_matmul_backward_is_thread_count_invariant_bitwise() {
    // Both backward GEMMs (dA = g·Bᵀ, dB = Aᵀ·g) run through the same
    // parallel kernel; the gradients must be bit-stable too.
    for &(m, k, n) in &[(1usize, 1usize, 1usize), (257, 3, 2), (61, 53, 47)] {
        assert_parity(&format!("matmul backward {m}x{k}x{n}"), || {
            let a = init::uniform(&[m, k], -1.0, 1.0, &mut seeded_rng(3)).requires_grad();
            let b = init::uniform(&[k, n], -1.0, 1.0, &mut seeded_rng(4)).requires_grad();
            a.matmul(&b).sum_all().backward();
            let mut out = a.grad_vec().unwrap();
            out.extend(b.grad_vec().unwrap());
            out
        });
    }
}

#[test]
fn softmax_is_thread_count_invariant_bitwise() {
    for &(rows, cols) in &[(1usize, 1usize), (1, 64), (257, 3), (2, 257), (61, 47)] {
        let x = init::uniform(&[rows, cols], -4.0, 4.0, &mut seeded_rng(rows as u64 + 5));
        assert_parity(&format!("log_softmax {rows}x{cols}"), || {
            x.log_softmax_rows().to_vec()
        });
        assert_parity(&format!("softmax {rows}x{cols}"), || {
            x.softmax_rows().to_vec()
        });
    }
}

#[test]
fn tensor_reductions_are_thread_count_invariant_bitwise() {
    for &(rows, cols) in &[(1usize, 1usize), (1, 300), (300, 1), (257, 3), (2, 257), (61, 47)] {
        let x = init::uniform(&[rows, cols], -1.0, 1.0, &mut seeded_rng(rows as u64 * 3 + 7));
        assert_parity(&format!("sum_all {rows}x{cols}"), || {
            vec![x.sum_all().item()]
        });
        assert_parity(&format!("sum_rows {rows}x{cols}"), || x.sum_rows().to_vec());
        assert_parity(&format!("sum_cols {rows}x{cols}"), || x.sum_cols().to_vec());
    }
}

#[test]
fn normalization_ops_are_thread_count_invariant_bitwise() {
    for &(rows, cols) in &[(1usize, 4usize), (61, 17), (130, 6)] {
        let x = init::uniform(&[rows, cols], -2.0, 2.0, &mut seeded_rng(rows as u64 + 9));
        assert_parity(&format!("l2_normalize {rows}x{cols}"), || {
            x.l2_normalize_rows().to_vec()
        });
        assert_parity(&format!("layer_norm {rows}x{cols}"), || {
            x.layer_norm_rows().to_vec()
        });
    }
}

#[test]
fn unfold_and_pool_are_thread_count_invariant_bitwise() {
    let x = init::uniform(&[5, 19, 7], -1.0, 1.0, &mut seeded_rng(10));
    assert_parity("unfold_windows", || x.unfold_windows(4).to_vec());
    assert_parity("max_over_time", || x.max_over_time().to_vec());
    assert_parity("unfold backward", || {
        let w = init::uniform(&[5, 19, 7], -1.0, 1.0, &mut seeded_rng(11)).requires_grad();
        w.unfold_windows(4).square().mean_all().backward();
        w.grad_vec().unwrap()
    });
}

#[test]
fn whole_graph_loss_is_thread_count_invariant_bitwise() {
    // A TextCNN-shaped forward+backward as one end-to-end chain: embedding
    // lookup → unfold → GEMM → bias → relu → pooling → log-softmax loss.
    let idx: Vec<usize> = (0..4 * 12).map(|i| (i * 17) % 50).collect();
    assert_parity("textcnn-like graph", || {
        let table = init::uniform(&[50, 6], -0.5, 0.5, &mut seeded_rng(12)).requires_grad();
        let w = init::uniform(&[3 * 6, 8], -0.5, 0.5, &mut seeded_rng(13)).requires_grad();
        let bias = Tensor::zeros(&[8]).requires_grad();
        let emb = table.embedding_lookup(&idx).reshape(&[4, 12, 6]);
        let pooled = emb
            .unfold_windows(3)
            .matmul(&w)
            .add_row(&bias)
            .relu()
            .reshape(&[4, 10, 8])
            .max_over_time();
        let loss = pooled.cross_entropy(&[0, 3, 1, 2]);
        loss.backward();
        let mut out = vec![loss.item()];
        out.extend(table.grad_vec().unwrap());
        out.extend(w.grad_vec().unwrap());
        out
    });
}

#[test]
fn pair_rows_matches_serial_reference_bitwise() {
    // Shapes straddle the fill grain so both the inline and pooled paths
    // run; (1,1) and prime sizes hit the ragged tails.
    for &(b, n, du, di) in &[
        (1usize, 1usize, 1usize, 1usize),
        (3, 257, 5, 7),
        (17, 61, 24, 12),
        (64, 500, 24, 12),
    ] {
        let users: Vec<f32> = (0..b * du).map(|i| ((i * 37) % 101) as f32 * 0.173 - 8.0).collect();
        let items: Vec<f32> = (0..n * di).map(|i| ((i * 53) % 89) as f32 * 0.211 - 9.0).collect();
        let serial = kernels::pair_rows_serial(&users, &items, du, di);
        assert_parity(&format!("pair_rows {b}x{n} ({du}+{di})"), || {
            kernels::pair_rows(&users, &items, du, di)
        });
        assert_eq!(
            bits(&serial),
            bits(&kernels::pair_rows(&users, &items, du, di)),
            "pair_rows {b}x{n} vs serial reference"
        );
    }
    // Pure copies: the vector path must stay bitwise in every mode.
    assert_eq!(ulp_tolerance("pair_rows"), 0, "pair_rows is a copy kernel — always bitwise");
}

#[test]
fn specialized_elementwise_kernels_match_serial_twins_bitwise() {
    // The dedicated add/sub/mul/scale kernels are lanewise: identical
    // scalar operation per element, so bitwise in both dispatch modes.
    assert_eq!(ulp_tolerance("add_slices"), 0, "add_slices is lanewise — always bitwise");
    assert_eq!(ulp_tolerance("sub_slices"), 0, "sub_slices is lanewise — always bitwise");
    assert_eq!(ulp_tolerance("mul_slices"), 0, "mul_slices is lanewise — always bitwise");
    assert_eq!(ulp_tolerance("scale_slice"), 0, "scale_slice is lanewise — always bitwise");
    for len in [1usize, 7, 8, 9, 257, 16 * 1024, 3 * 16 * 1024 + 17] {
        let a: Vec<f32> = (0..len).map(|i| ((i * 41) % 113) as f32 * 0.073 - 4.0).collect();
        let b: Vec<f32> = (0..len).map(|i| ((i * 59) % 127) as f32 * 0.057 - 3.5).collect();
        let add_ref = kernels::add_slices_serial(&a, &b);
        assert_parity(&format!("add_slices len {len}"), || kernels::add_slices(&a, &b));
        assert_eq!(bits(&add_ref), bits(&kernels::add_slices(&a, &b)), "add_slices len {len}");
        let sub_ref = kernels::sub_slices_serial(&a, &b);
        assert_parity(&format!("sub_slices len {len}"), || kernels::sub_slices(&a, &b));
        assert_eq!(bits(&sub_ref), bits(&kernels::sub_slices(&a, &b)), "sub_slices len {len}");
        let mul_ref = kernels::mul_slices_serial(&a, &b);
        assert_parity(&format!("mul_slices len {len}"), || kernels::mul_slices(&a, &b));
        assert_eq!(bits(&mul_ref), bits(&kernels::mul_slices(&a, &b)), "mul_slices len {len}");
        let scale_ref = kernels::scale_slice_serial(&a, -1.73);
        assert_parity(&format!("scale_slice len {len}"), || kernels::scale_slice(&a, -1.73));
        assert_eq!(bits(&scale_ref), bits(&kernels::scale_slice(&a, -1.73)), "scale_slice len {len}");
    }
}

#[test]
fn log_softmax_rows_kernel_meets_its_tolerance_tier() {
    // Rows/cols straddle the vector width and the fill grain; the wide
    // input range exercises the polynomial exp far from zero.
    for &(rows, cols, lo, hi) in &[
        (1usize, 1usize, -4.0f32, 4.0f32),
        (1, 7, -4.0, 4.0),
        (1, 64, -4.0, 4.0),
        (257, 3, -4.0, 4.0),
        (2, 257, -4.0, 4.0),
        (61, 47, -4.0, 4.0),
        (64, 33, -20.0, 20.0),
    ] {
        let x = init::uniform(&[rows, cols], lo, hi, &mut seeded_rng(rows as u64 * 31 + cols as u64)).to_vec();
        let serial = kernels::log_softmax_rows_serial(&x, rows, cols);
        assert_parity(&format!("log_softmax_rows {rows}x{cols}"), || {
            kernels::log_softmax_rows(&x, rows, cols)
        });
        assert_within_ulp(
            &format!("log_softmax_rows {rows}x{cols}"),
            tier_tolerance("log_softmax_rows"),
            &kernels::log_softmax_rows(&x, rows, cols),
            &serial,
        );
    }
}

#[test]
fn dequant_rows_matches_serial_twin_bitwise() {
    // int8→f32 conversion is exact and the per-element multiply rounds
    // once, so the vector path is bitwise in every mode.
    assert_eq!(ulp_tolerance("dequant_rows"), 0, "dequant_rows is exact-conversion — always bitwise");
    for &(n, dim) in &[(1usize, 1usize), (3, 7), (17, 12), (501, 24), (64, 96)] {
        let q: Vec<i8> = (0..n * dim).map(|i| (((i * 37) % 255) as i64 - 127) as i8).collect();
        let scales: Vec<f32> = (0..n).map(|r| ((r * 13) % 31) as f32 * 0.0173 + 0.001).collect();
        let serial = kernels::dequant_rows_serial(&q, &scales, dim);
        assert_parity(&format!("dequant_rows {n}x{dim}"), || {
            kernels::dequant_rows(&q, &scales, dim)
        });
        assert_eq!(
            bits(&serial),
            bits(&kernels::dequant_rows(&q, &scales, dim)),
            "dequant_rows {n}x{dim} vs serial twin"
        );
    }
}

// ---------------------------------------------------------------------------
// ULP tolerances for `// om-lint: simd` kernels.
//
// om-lint's `simd-ulp-tolerance` pass requires every kernel carrying the
// simd marker in `src/kernels.rs` to register a tolerance here via a
// literal `ulp_tolerance("<name>")` call. Tolerance 0 means the AVX2 port
// preserves the exact scalar operation sequence per output element and the
// kernel stays bitwise-equal to its serial twin in every dispatch mode.
// Nonzero tolerances are for kernels that genuinely reorder a reduction
// across vector lanes (`sum`: 4×8 fixed-shape accumulators) or substitute
// a polynomial exp (`log_softmax_rows`): the bound is the measured worst
// case over this suite's shape battery padded ~4–5×, and only applies
// under AVX2 dispatch — [`tier_tolerance`] drops to 0 (bitwise) when the
// scalar paths are active. Widening an entry requires re-measuring and an
// argued bound, not a quiet constant bump.
// ---------------------------------------------------------------------------

/// `(kernel, max ULP distance vs the serial twin under AVX2 dispatch)` for
/// every simd-marked kernel, alphabetical.
const ULP_TOLERANCES: &[(&str, u32)] = &[
    ("add_slices", 0),
    ("dequant_rows", 0),
    ("gemm", 0),
    ("log_softmax_rows", 1024), // measured worst 256 (wide-range rows)
    ("mul_slices", 0),
    ("pair_rows", 0),
    ("scale_slice", 0),
    ("sub_slices", 0),
    ("sum", 512), // measured worst 99 (cancellation-heavy chunks)
];

/// Look up a registered tolerance; unregistered names are a test bug (and
/// an om-lint violation at the kernel's marker).
fn ulp_tolerance(name: &str) -> u32 {
    ULP_TOLERANCES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, t)| t)
        .unwrap_or_else(|| panic!("kernel `{name}` has no registered ULP tolerance"))
}

/// Distance in representable-float steps between two finite f32 values
/// (the standard monotonic bits mapping; equal bits → 0).
fn ulp_distance(a: f32, b: f32) -> u32 {
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        if bits < 0 { i64::from(i32::MIN) - i64::from(bits) } else { i64::from(bits) }
    }
    key(a).abs_diff(key(b)).try_into().unwrap_or(u32::MAX)
}

/// The tolerance that applies in the current dispatch mode: the registered
/// AVX2 bound when the vector paths are active, otherwise 0 — scalar
/// dispatch must stay bitwise-identical to the serial twins.
fn tier_tolerance(name: &str) -> u32 {
    if om_tensor::simd::active() {
        ulp_tolerance(name)
    } else {
        0
    }
}

fn assert_within_ulp(name: &str, tol: u32, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{name}: length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let d = ulp_distance(g, w);
        assert!(
            d <= tol,
            "{name}[{i}]: {g} vs {w} is {d} ULP apart (tolerance {tol})"
        );
    }
}

#[test]
fn simd_marked_kernels_meet_their_registered_ulp_tolerance() {
    // The tolerance-tier parity mode: every simd-marked kernel, compared
    // against its always-scalar serial twin under the ambient dispatch
    // mode. CI's kernel-matrix job runs this whole suite twice —
    // OM_SIMD=auto (vector paths, registered tolerances) and OM_SIMD=off
    // (scalar paths, everything bitwise via tier_tolerance → 0).
    let (m, k, n) = (61usize, 53usize, 47usize);
    let a: Vec<f32> = (0..m * k).map(|i| ((i * 37) % 101) as f32 * 0.173 - 8.0).collect();
    let b: Vec<f32> = (0..k * n).map(|i| ((i * 53) % 89) as f32 * 0.211 - 9.0).collect();
    let mut serial = vec![0.0f32; m * n];
    kernels::gemm_serial(&a, &b, &mut serial, m, k, n);
    let mut parallel = vec![0.0f32; m * n];
    kernels::gemm(&a, &b, &mut parallel, m, k, n);
    assert_within_ulp("gemm", tier_tolerance("gemm"), &parallel, &serial);

    let x: Vec<f32> = (0..10_007).map(|i| ((i * 29) % 97) as f32 * 0.131 - 6.0).collect();
    assert_within_ulp(
        "sum",
        tier_tolerance("sum"),
        &[kernels::sum(&x)],
        &[kernels::sum_serial(&x)],
    );

    let sm: Vec<f32> = (0..61 * 47).map(|i| ((i * 43) % 89) as f32 * 0.09 - 4.0).collect();
    assert_within_ulp(
        "log_softmax_rows",
        tier_tolerance("log_softmax_rows"),
        &kernels::log_softmax_rows(&sm, 61, 47),
        &kernels::log_softmax_rows_serial(&sm, 61, 47),
    );

    // Every bitwise-tier kernel must register exactly 0: those ports
    // preserve the scalar operation sequence, and widening one would be
    // abandoning bit parity, not tuning a constant. The two reduction
    // kernels carry their measured, argued bounds.
    assert_eq!(ulp_tolerance("gemm"), 0, "gemm's micro-tile preserves p-order mul/add — bitwise");
    assert!(ulp_tolerance("sum") > 0, "sum reorders lanes under AVX2 — needs a real bound");
    assert!(
        ulp_tolerance("log_softmax_rows") > 0,
        "log_softmax_rows uses a polynomial exp under AVX2 — needs a real bound"
    );
    for &(name, tol) in ULP_TOLERANCES {
        if !matches!(name, "sum" | "log_softmax_rows") {
            assert_eq!(tol, 0, "kernel `{name}` widened its ULP tolerance without an argued bound");
        }
    }
    assert_eq!(ulp_distance(1.0, 1.0), 0);
    assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
    assert_eq!(ulp_distance(-0.0, 0.0), 0);
}
