//! Elementwise arithmetic and activations.

use super::{acc, wants_grad};
use crate::kernels;
use crate::Tensor;

impl Tensor {
    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "{op}: shape mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise addition of two same-shape tensors.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        let out = kernels::add_slices(&self.data(), &other.data());
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                acc(&parents[0], g);
                acc(&parents[1], g);
            }),
        )
    }

    /// Elementwise subtraction `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "sub");
        let out = kernels::sub_slices(&self.data(), &other.data());
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                acc(&parents[0], g);
                if wants_grad(&parents[1]) {
                    let neg = kernels::map(g, |x| -x);
                    acc(&parents[1], &neg);
                }
            }),
        )
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        let out = kernels::mul_slices(&self.data(), &other.data());
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let (pa, pb) = (&parents[0], &parents[1]);
                if wants_grad(pa) {
                    let ga = kernels::mul_slices(g, &pb.data());
                    acc(pa, &ga);
                }
                if wants_grad(pb) {
                    let gb = kernels::mul_slices(g, &pa.data());
                    acc(pb, &gb);
                }
            }),
        )
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, c: f32) -> Tensor {
        let out = kernels::scale_slice(&self.data(), c);
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp = kernels::scale_slice(g, c);
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        let out = kernels::map(&self.data(), |x| x + c);
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| acc(&parents[0], g)),
        )
    }

    /// Negate every element.
    pub fn neg(&self) -> Tensor {
        self.scale(-1.0)
    }

    /// Broadcast-add a row vector `[n]` to every row of a `[..., n]` tensor.
    /// This is the bias pattern of a dense layer.
    pub fn add_row(&self, row: &Tensor) -> Tensor {
        let (_, n) = self.shape().as_2d();
        assert_eq!(
            row.numel(),
            n,
            "add_row: row length {} does not match last dim {}",
            row.numel(),
            n
        );
        let out = {
            let (a, b) = (self.data(), row.data());
            let (a, b): (&[f32], &[f32]) = (&a, &b);
            kernels::map_indexed(a.len(), |i| a[i] + b[i % n])
        };
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone(), row.clone()],
            Box::new(move |g, parents| {
                acc(&parents[0], g);
                if wants_grad(&parents[1]) {
                    let mut gb = vec![0.0f32; n];
                    for (i, x) in g.iter().enumerate() {
                        gb[i % n] += x;
                    }
                    acc(&parents[1], &gb);
                }
            }),
        )
    }

    /// Broadcast-multiply a row vector `[n]` into every row of a `[..., n]`
    /// tensor. This is the gain pattern of layer normalisation.
    pub fn mul_row(&self, row: &Tensor) -> Tensor {
        let (_, n) = self.shape().as_2d();
        assert_eq!(
            row.numel(),
            n,
            "mul_row: row length {} does not match last dim {}",
            row.numel(),
            n
        );
        let out = {
            let (a, b) = (self.data(), row.data());
            let (a, b): (&[f32], &[f32]) = (&a, &b);
            kernels::map_indexed(a.len(), |i| a[i] * b[i % n])
        };
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone(), row.clone()],
            Box::new(move |g, parents| {
                let (pa, pb) = (&parents[0], &parents[1]);
                if wants_grad(pa) {
                    let b = pb.data();
                    let b: &[f32] = &b;
                    let ga = kernels::map_indexed(g.len(), |i| g[i] * b[i % n]);
                    acc(pa, &ga);
                }
                if wants_grad(pb) {
                    let a = pa.data();
                    let mut gb = vec![0.0f32; n];
                    for (i, x) in g.iter().enumerate() {
                        gb[i % n] += x * a[i];
                    }
                    acc(pb, &gb);
                }
            }),
        )
    }

    /// Rectified linear unit, the paper's activation (Eq. 5).
    pub fn relu(&self) -> Tensor {
        let saved = self.to_vec();
        let out = kernels::map(&saved, |x| x.max(0.0));
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp = kernels::zip_map(g, &saved, |gy, x| if x > 0.0 { gy } else { 0.0 });
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        let out = kernels::map(&self.data(), |x| 1.0 / (1.0 + (-x).exp()));
        let saved = out.clone();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp = kernels::zip_map(g, &saved, |gy, y| gy * y * (1.0 - y));
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh_act(&self) -> Tensor {
        let out = kernels::map(&self.data(), f32::tanh);
        let saved = out.clone();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp = kernels::zip_map(g, &saved, |gy, y| gy * (1.0 - y * y));
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        let out = kernels::map(&self.data(), f32::exp);
        let saved = out.clone();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp = kernels::zip_map(g, &saved, |gy, y| gy * y);
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Elementwise natural logarithm (inputs must be positive).
    pub fn log(&self) -> Tensor {
        let saved = self.to_vec();
        let out = kernels::map(&saved, f32::ln);
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp = kernels::zip_map(g, &saved, |gy, x| gy / x);
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.mul(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn add_forward_backward() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).requires_grad();
        let y = a.add(&b).sum_all();
        assert_eq!(y.item(), 10.0);
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![1.0, 1.0]);
        assert_eq!(b.grad_vec().unwrap(), vec![1.0, 1.0]);
    }

    #[test]
    fn sub_backward_negates_rhs() {
        let a = Tensor::from_vec(vec![5.0, 5.0], &[2]).requires_grad();
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let y = a.sub(&b).sum_all();
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![1.0, 1.0]);
        assert_eq!(b.grad_vec().unwrap(), vec![-1.0, -1.0]);
    }

    #[test]
    fn mul_backward_is_cross() {
        let a = Tensor::from_vec(vec![2.0, 3.0], &[2]).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 7.0], &[2]).requires_grad();
        let y = a.mul(&b).sum_all();
        assert_eq!(y.item(), 31.0);
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![5.0, 7.0]);
        assert_eq!(b.grad_vec().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn scale_and_add_scalar() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]).requires_grad();
        let y = a.scale(3.0).add_scalar(1.0).sum_all();
        assert_eq!(y.item(), 3.0 - 6.0 + 2.0);
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![3.0, 3.0]);
    }

    #[test]
    fn add_row_broadcasts_bias() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).requires_grad();
        let y = x.add_row(&b);
        assert_eq!(y.to_vec(), vec![11.0, 22.0, 13.0, 24.0]);
        y.sum_all().backward();
        assert_eq!(b.grad_vec().unwrap(), vec![2.0, 2.0]);
    }

    #[test]
    fn relu_kills_negative_gradient() {
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[2]).requires_grad();
        let y = x.relu();
        assert_eq!(y.to_vec(), vec![0.0, 2.0]);
        y.sum_all().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn sigmoid_tanh_exp_log_forward() {
        let x = Tensor::from_vec(vec![0.0], &[1]);
        assert!(close(x.sigmoid().item(), 0.5));
        assert!(close(x.tanh_act().item(), 0.0));
        assert!(close(x.exp().item(), 1.0));
        let e = Tensor::from_vec(vec![std::f32::consts::E], &[1]);
        assert!(close(e.log().item(), 1.0));
    }

    #[test]
    fn square_matches_mul_self() {
        let x = Tensor::from_vec(vec![3.0, -4.0], &[2]).requires_grad();
        let y = x.square().sum_all();
        assert_eq!(y.item(), 25.0);
        y.backward();
        assert_eq!(x.grad_vec().unwrap(), vec![6.0, -8.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }
}
