//! Arena-blob persistence: all-or-nothing rejection of every corruption
//! class, and bitwise score parity between in-memory and memory-mapped
//! arenas — the OMCK-style durability contract extended to the serving
//! data plane.

use std::path::{Path, PathBuf};

use om_data::synth_feature_rows;
use om_data::types::{ItemId, UserId};
use om_data::{SplitConfig, SynthConfig, SynthWorld};
use om_serve::{
    load_model, BlobError, BlobKind, ItemArena, Request, ServeEngine, ServeOptions, ShardedEngine,
    UserArena, Verify,
};
use om_tensor::seeded_rng;
use omnimatch_core::{CorpusViews, OmniMatchConfig, Trainer};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("om-blob-test-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

const ITEM_DIM: usize = 12; // OmniMatchConfig::fast() dims
const USER_DIM: usize = 24;

fn sample_arenas(n_items: usize, n_users: usize) -> (ItemArena, UserArena) {
    let items = ItemArena::from_raw(
        (0..n_items as u32).map(ItemId).collect(),
        synth_feature_rows(n_items, ITEM_DIM, 0xB10B),
        ITEM_DIM,
    );
    let users = UserArena::from_raw(
        (0..n_users as u32).map(UserId).collect(),
        synth_feature_rows(n_users, USER_DIM, 0xB10C),
        USER_DIM,
    );
    (items, users)
}

// ---------------------------------------------------------------------------
// Round trip + parity.
// ---------------------------------------------------------------------------

#[test]
fn roundtrip_preserves_ids_dims_and_every_data_bit() {
    let dir = tmp_dir("roundtrip");
    let (items, users) = sample_arenas(137, 41);
    let ipath = dir.join("items.omab");
    let upath = dir.join("users.omab");
    items.write_blob(&ipath).expect("write items");
    users.write_blob(&upath).expect("write users");

    let mapped_items = ItemArena::load_blob(&ipath, Verify::Full).expect("load items");
    let mapped_users = UserArena::load_blob(&upath, Verify::Full).expect("load users");
    assert_eq!(mapped_items.len(), items.len());
    assert_eq!(mapped_items.dim(), items.dim());
    assert_eq!(mapped_users.len(), users.len());
    assert_eq!(mapped_users.dim(), users.dim());
    for (a, b) in items.data().iter().zip(mapped_items.data()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for i in 0..items.len() {
        assert_eq!(items.id_at(i), mapped_items.id_at(i));
    }
    for &u in users.ids() {
        let (a, b) = (users.row(u).expect("row"), mapped_users.row(u).expect("row"));
        assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
    // Feature bits survive even when poisoned with NaN payloads.
    let mut weird = synth_feature_rows(5, ITEM_DIM, 1);
    weird[3] = f32::NAN;
    weird[17] = f32::NEG_INFINITY;
    weird[20] = -0.0;
    let arena = ItemArena::from_raw((0..5).map(ItemId).collect(), weird.clone(), ITEM_DIM);
    let wpath = dir.join("weird.omab");
    arena.write_blob(&wpath).expect("write");
    let back = ItemArena::load_blob(&wpath, Verify::Full).expect("load");
    for (a, b) in weird.iter().zip(back.data()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn mapped_and_in_memory_arenas_serve_bitwise_identical_responses() {
    let dir = tmp_dir("parity");
    let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
    let scenario = world.scenario("Books", "Movies", SplitConfig::default());
    let cfg = OmniMatchConfig::fast().with_seed(53);
    let trained = Trainer::new(cfg.clone()).fit(&scenario);
    let ckpt = trained.export_checkpoint().to_vec();
    let (model, views, _) = trained.into_parts();
    let vocab_size = views.vocab.len();

    let (items, users) = sample_arenas(300, 17);
    let ipath = dir.join("items.omab");
    let upath = dir.join("users.omab");
    items.write_blob(&ipath).expect("write items");
    users.write_blob(&upath).expect("write users");

    let opts = ServeOptions { shard_items: 64, ..ServeOptions::default() };
    let in_memory =
        ShardedEngine::new(ServeEngine::with_arenas(model, views, items, users, opts.clone()));

    // A second process's cold start: model from the checkpoint, arenas
    // memory-mapped from the blobs (Quick — the production verify level).
    let model2 = load_model(&cfg, vocab_size, &ckpt).expect("decode checkpoint");
    let views2 = CorpusViews::build(&scenario, &cfg, &mut seeded_rng(cfg.seed));
    let items2 = ItemArena::load_blob(&ipath, Verify::Quick).expect("map items");
    let users2 = UserArena::load_blob(&upath, Verify::Quick).expect("map users");
    let mapped =
        ShardedEngine::new(ServeEngine::with_arenas(model2, views2, items2, users2, opts));

    let reqs: Vec<Request> = (0..17)
        .map(|i| Request { id: i as u64, user: UserId(i as u32), arrive_us: 0 })
        .collect();
    let a = in_memory.serve_batch(&reqs).expect("serve batch");
    let b = mapped.serve_batch(&reqs).expect("serve batch");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.top.len(), y.top.len());
        for ((ia, sa), (ib, sb)) in x.top.iter().zip(&y.top) {
            assert_eq!(ia, ib, "mapped arena ranked differently");
            assert_eq!(sa.to_bits(), sb.to_bits(), "score bits drifted through the blob");
        }
    }
    // And the full score rows, not just the page.
    for req in &reqs {
        let ra = in_memory.score_user(req.user).expect("score user");
        let rb = mapped.score_user(req.user).expect("score user");
        assert!(ra.iter().zip(&rb).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}

// ---------------------------------------------------------------------------
// Corruption classes — each rejected all-or-nothing.
// ---------------------------------------------------------------------------

fn valid_blob_bytes(dir: &Path) -> (PathBuf, Vec<u8>) {
    let (items, _) = sample_arenas(64, 1);
    let path = dir.join("victim.omab");
    items.write_blob(&path).expect("write");
    let bytes = std::fs::read(&path).expect("read back");
    (path, bytes)
}

#[test]
fn truncation_at_any_section_is_rejected_even_in_quick_mode() {
    let dir = tmp_dir("trunc");
    let (path, bytes) = valid_blob_bytes(&dir);
    // Cut inside the header, the ids, the data, and one byte short.
    for cut in [0, 7, 39, 41, 40 + 64 * 2, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).expect("write truncated");
        let err = ItemArena::load_blob(&path, Verify::Quick)
            .err()
            .unwrap_or_else(|| panic!("truncation at {cut} accepted"));
        assert!(
            matches!(err, BlobError::Truncated { .. } | BlobError::HeaderCrc | BlobError::BadMagic),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn trailing_bytes_are_rejected_even_in_quick_mode() {
    let dir = tmp_dir("trailing");
    let (path, bytes) = valid_blob_bytes(&dir);
    for extra in [1usize, 8, 4096] {
        let mut grown = bytes.clone();
        grown.extend(std::iter::repeat_n(0xAAu8, extra));
        std::fs::write(&path, &grown).expect("write grown");
        match ItemArena::load_blob(&path, Verify::Quick).err() {
            Some(BlobError::TrailingBytes { expected, actual }) => {
                assert_eq!(expected as usize, bytes.len());
                assert_eq!(actual as usize, bytes.len() + extra);
            }
            other => panic!("{extra} trailing bytes: expected TrailingBytes, got {other:?}"),
        }
    }
}

#[test]
fn header_corruption_fails_the_header_crc() {
    let dir = tmp_dir("hdr");
    let (path, bytes) = valid_blob_bytes(&dir);
    // Flip one bit in each header field behind the CRC: version, kind,
    // dim, n, ids_crc, data_crc.
    for off in [4usize, 8, 12, 16, 24, 28] {
        let mut bad = bytes.clone();
        bad[off] ^= 0x10;
        std::fs::write(&path, &bad).expect("write corrupted");
        assert_eq!(
            ItemArena::load_blob(&path, Verify::Quick).err(),
            Some(BlobError::HeaderCrc),
            "flip at {off}"
        );
    }
    // The magic is checked before the CRC.
    let mut bad = bytes.clone();
    bad[1] ^= 0x01;
    std::fs::write(&path, &bad).expect("write corrupted");
    assert_eq!(ItemArena::load_blob(&path, Verify::Quick).err(), Some(BlobError::BadMagic));
    // A corrupted header CRC itself also fails.
    let mut bad = bytes;
    bad[33] ^= 0x80;
    std::fs::write(&path, &bad).expect("write corrupted");
    assert_eq!(ItemArena::load_blob(&path, Verify::Quick).err(), Some(BlobError::HeaderCrc));
}

#[test]
fn payload_corruption_fails_the_section_crcs_in_full_mode() {
    let dir = tmp_dir("payload");
    let (path, bytes) = valid_blob_bytes(&dir);

    // Ids section: byte 40 + k.
    let mut bad = bytes.clone();
    bad[45] ^= 0x04;
    std::fs::write(&path, &bad).expect("write corrupted");
    assert_eq!(ItemArena::load_blob(&path, Verify::Full).err(), Some(BlobError::IdsCrc));

    // Data section: last byte of the file.
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x80;
    std::fs::write(&path, &bad).expect("write corrupted");
    assert_eq!(ItemArena::load_blob(&path, Verify::Full).err(), Some(BlobError::DataCrc));

    // Quick mode deliberately skips payload CRCs (cold start touches
    // O(1) pages) — the frame still matches, so this loads. The tradeoff
    // is documented in DESIGN.md; this pin makes it explicit.
    assert!(ItemArena::load_blob(&path, Verify::Quick).is_ok());
}

#[test]
fn loading_a_blob_as_the_wrong_arena_kind_is_an_error() {
    let dir = tmp_dir("kind");
    let (items, users) = sample_arenas(8, 8);
    let ipath = dir.join("items.omab");
    let upath = dir.join("users.omab");
    items.write_blob(&ipath).expect("write items");
    users.write_blob(&upath).expect("write users");
    assert_eq!(
        UserArena::load_blob(&ipath, Verify::Full).err(),
        Some(BlobError::WrongKind { expected: BlobKind::Users, found: BlobKind::Items })
    );
    assert_eq!(
        ItemArena::load_blob(&upath, Verify::Full).err(),
        Some(BlobError::WrongKind { expected: BlobKind::Items, found: BlobKind::Users })
    );
}

#[test]
fn empty_arenas_roundtrip_and_missing_files_error() {
    let dir = tmp_dir("edges");
    let empty = ItemArena::from_raw(Vec::new(), Vec::new(), ITEM_DIM);
    let path = dir.join("empty.omab");
    empty.write_blob(&path).expect("write empty");
    let back = ItemArena::load_blob(&path, Verify::Full).expect("load empty");
    assert!(back.is_empty());
    assert_eq!(back.dim(), ITEM_DIM);
    assert!(matches!(
        ItemArena::load_blob(&dir.join("nope.omab"), Verify::Quick),
        Err(BlobError::Io(_))
    ));
}

#[test]
fn empty_user_arena_roundtrips_in_both_verify_modes() {
    // A serving tier whose every user is cold-start has a zero-row user
    // arena. Its blob is header-only — the frame math must accept the
    // zero-length ids and data sections, not call them truncation.
    let dir = tmp_dir("empty-users");
    let empty = UserArena::from_raw(Vec::new(), Vec::new(), USER_DIM);
    assert_eq!(empty.len(), 0);
    let path = dir.join("empty-users.omab");
    empty.write_blob(&path).expect("write empty user arena");

    for verify in [Verify::Full, Verify::Quick] {
        let back = UserArena::load_blob(&path, verify)
            .unwrap_or_else(|e| panic!("empty user arena rejected under {verify:?}: {e:?}"));
        assert_eq!(back.len(), 0);
        assert_eq!(back.dim(), USER_DIM);
        assert!(back.ids().is_empty());
        assert_eq!(back.row(UserId(0)), None, "no row in an empty arena");
    }

    // Kind tagging still applies to the degenerate blob.
    assert_eq!(
        ItemArena::load_blob(&path, Verify::Quick).err(),
        Some(BlobError::WrongKind { expected: BlobKind::Items, found: BlobKind::Users })
    );

    // And growing out of empty works: the first graduation appends row 0.
    let first = empty.with_row(UserId(9), &synth_feature_rows(1, USER_DIM, 0xB10D));
    assert_eq!(first.len(), 1);
    assert_eq!(first.ids(), &[UserId(9)]);
}

// ---------------------------------------------------------------------------
// Quantized (OMAB v2) blobs: round trip + the same corruption classes.
// ---------------------------------------------------------------------------

#[test]
fn quantized_blob_roundtrips_bitwise() {
    let dir = tmp_dir("q8-roundtrip");
    let (items, users) = sample_arenas(97, 23);
    let (qitems, qusers) = (items.quantized(), users.quantized());
    let ipath = dir.join("items.q8.omab");
    let upath = dir.join("users.q8.omab");
    qitems.write_blob(&ipath).expect("write quantized items");
    qusers.write_blob(&upath).expect("write quantized users");

    let back_items = ItemArena::load_blob(&ipath, Verify::Full).expect("load quantized items");
    let back_users = UserArena::load_blob(&upath, Verify::Full).expect("load quantized users");
    assert!(back_items.is_quantized(), "v2 blob must reload quantized");
    assert!(back_users.is_quantized(), "v2 blob must reload quantized");
    assert_eq!(back_items.len(), qitems.len());
    assert_eq!(back_items.dim(), qitems.dim());
    for i in 0..qitems.len() {
        assert_eq!(qitems.id_at(i), back_items.id_at(i));
    }

    // Dequantized rows — codes and scales both survived — bit for bit.
    let (mut s1, mut s2) = (Vec::new(), Vec::new());
    let a = qitems.rows_f32(0, qitems.len(), &mut s1);
    let b = back_items.rows_f32(0, back_items.len(), &mut s2);
    assert_eq!(a.len(), b.len());
    assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));

    let mut ra = vec![0.0f32; USER_DIM];
    let mut rb = vec![0.0f32; USER_DIM];
    for &u in qusers.ids() {
        assert!(qusers.copy_row_into(u, &mut ra));
        assert!(back_users.copy_row_into(u, &mut rb));
        assert!(ra.iter().zip(&rb).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    // The reloaded (mapped) quantized user arena still takes online
    // updates: with_row re-quantizes into a fresh owned Q8 arena.
    let grown = back_users.with_row(UserId(9_999), &synth_feature_rows(1, USER_DIM, 0xF00D));
    assert!(grown.is_quantized());
    assert_eq!(grown.len(), back_users.len() + 1);
    assert!(grown.contains(UserId(9_999)));
}

#[test]
fn empty_quantized_arena_roundtrips() {
    let dir = tmp_dir("q8-empty");
    let empty = ItemArena::from_raw(Vec::new(), Vec::new(), ITEM_DIM).quantized();
    let path = dir.join("empty.q8.omab");
    empty.write_blob(&path).expect("write empty quantized");
    for verify in [Verify::Full, Verify::Quick] {
        let back = ItemArena::load_blob(&path, verify).expect("load empty quantized");
        assert!(back.is_quantized());
        assert!(back.is_empty());
        assert_eq!(back.dim(), ITEM_DIM);
    }
}

fn valid_q8_blob_bytes(dir: &Path) -> (PathBuf, Vec<u8>) {
    let (items, _) = sample_arenas(64, 1);
    let path = dir.join("victim.q8.omab");
    items.quantized().write_blob(&path).expect("write quantized");
    let bytes = std::fs::read(&path).expect("read back");
    (path, bytes)
}

#[test]
fn quantized_blob_truncation_is_rejected_even_in_quick_mode() {
    let dir = tmp_dir("q8-trunc");
    let (path, bytes) = valid_q8_blob_bytes(&dir);
    // n=64, dim=12: ids at 40..296, scales at 296..552, codes at
    // 552..1320. Cut inside the header, ids, scales, codes, and one
    // byte short.
    assert_eq!(bytes.len(), 1320, "layout drifted; update the cut points");
    for cut in [0, 7, 39, 41, 300, 600, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).expect("write truncated");
        let err = ItemArena::load_blob(&path, Verify::Quick)
            .err()
            .unwrap_or_else(|| panic!("truncation at {cut} accepted"));
        assert!(
            matches!(err, BlobError::Truncated { .. } | BlobError::HeaderCrc | BlobError::BadMagic),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
    // Trailing garbage is caught by the same exact-length frame.
    let mut grown = bytes.clone();
    grown.extend(std::iter::repeat_n(0xAAu8, 16));
    std::fs::write(&path, &grown).expect("write grown");
    assert!(matches!(
        ItemArena::load_blob(&path, Verify::Quick).err(),
        Some(BlobError::TrailingBytes { .. })
    ));
}

#[test]
fn quantized_blob_payload_corruption_fails_the_crcs_in_full_mode() {
    let dir = tmp_dir("q8-payload");
    let (path, bytes) = valid_q8_blob_bytes(&dir);

    // Ids section.
    let mut bad = bytes.clone();
    bad[45] ^= 0x04;
    std::fs::write(&path, &bad).expect("write corrupted");
    assert_eq!(ItemArena::load_blob(&path, Verify::Full).err(), Some(BlobError::IdsCrc));

    // A scale byte: one flipped bit rescales a whole row — the v2 data
    // CRC covers the scales, not just the codes.
    let mut bad = bytes.clone();
    bad[300] ^= 0x40;
    std::fs::write(&path, &bad).expect("write corrupted");
    assert_eq!(ItemArena::load_blob(&path, Verify::Full).err(), Some(BlobError::DataCrc));

    // A code byte (last byte of the file).
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x80;
    std::fs::write(&path, &bad).expect("write corrupted");
    assert_eq!(ItemArena::load_blob(&path, Verify::Full).err(), Some(BlobError::DataCrc));

    // Quick mode skips payload CRCs by design (same tradeoff as v1).
    assert!(ItemArena::load_blob(&path, Verify::Quick).is_ok());

    // Header version flips fail the header CRC; a *consistent* header
    // with an unknown version is a typed BadVersion, not a misread.
    let mut bad = bytes;
    bad[4] = 3;
    let fixed_crc = om_nn::serialize::crc32(&bad[0..32]);
    bad[32..36].copy_from_slice(&fixed_crc.to_le_bytes());
    std::fs::write(&path, &bad).expect("write corrupted");
    assert_eq!(ItemArena::load_blob(&path, Verify::Quick).err(), Some(BlobError::BadVersion(3)));
}
