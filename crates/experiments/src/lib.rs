//! # om-experiments
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation (§5). One binary per artifact:
//!
//! | binary      | paper artifact | contents |
//! |-------------|----------------|----------|
//! | `table2`    | Table 2        | 6 Amazon scenarios × 7 methods, RMSE/MAE + Δ% |
//! | `table3`    | Table 3        | same on the Douban preset |
//! | `table4`    | Table 4        | EMCDR/PTUPCDR/Ours at 100/80/50/20 % training users |
//! | `table5`    | Table 5        | ablations at 20 % training users |
//! | `table6`    | Table 6        | training time with DA / SCL removed |
//! | `figure4`   | Figure 4       | RMSE/MAE vs α and β sweeps (Movies → Music) |
//! | `case_study`| §5.10          | an auxiliary-review generation trace |
//!
//! Every binary prints the paper-layout table with the paper's reported
//! values beside the measured ones and writes a TSV under `results/`.
//! Trials vary both the split seed and the model seed and are averaged
//! (the paper averages 5 random trials; the default here is 3 for CPU
//! runtime — pass `--trials 5` to match the paper exactly).

pub mod paper;
pub mod report;
pub mod tables23;
pub mod runner;

pub use report::{write_tsv, Table};
pub use runner::{run_trials, Method, TrialResult};
