//! The central registry of every `OM_*` environment variable the
//! workspace reads, and the pass that keeps it honest.
//!
//! Every knob is declared here once — name, default, consuming crate,
//! one-line doc. The pass scans every string literal in the tree: a
//! literal spelling an `OM_*` name that is not declared fails the lint
//! (no undocumented knobs), and a declared variable with no remaining
//! call site fails too (no zombie docs). Because the scan matches the
//! *name literal* rather than the `env::var` call shape, indirect readers
//! like `env_usize("OM_SERVE_BATCH", 8)` are caught the same as direct
//! ones.
//!
//! `cargo lint -- --env-table` renders the registry as the markdown table
//! README embeds between `<!-- om-env-table:begin -->` /
//! `<!-- om-env-table:end -->`; `--env-table --check` diffs the rendered
//! table against that block so CI fails when they diverge.
//!
//! `crates/lint` itself is out of scope of the scan: this file *is* the
//! registry, and lint fixtures legitimately spell fake `OM_*` names.

use std::collections::BTreeSet;

use crate::lexer::{LexedFile, TokenKind};
use crate::passes::Violation;

/// One declared environment variable.
#[derive(Debug, Clone, Copy)]
pub struct EnvVar {
    /// Variable name (`OM_*`).
    pub name: &'static str,
    /// Default when unset, as documented to users.
    pub default: &'static str,
    /// The crate that reads it.
    pub consumer: &'static str,
    /// One-line description.
    pub doc: &'static str,
}

/// Every `OM_*` variable the workspace reads, alphabetical.
pub const REGISTRY: &[EnvVar] = &[
    EnvVar {
        name: "OM_CKPT",
        default: "off",
        consumer: "omnimatch-core",
        doc: "enable atomic per-epoch training checkpoints with bitwise kill-and-resume",
    },
    EnvVar {
        name: "OM_CKPT_DIR",
        default: "results/ckpt",
        consumer: "omnimatch-core",
        doc: "root directory for training checkpoints",
    },
    EnvVar {
        name: "OM_CKPT_EVERY",
        default: "1",
        consumer: "omnimatch-core",
        doc: "checkpoint cadence in epochs (the final epoch always saves)",
    },
    EnvVar {
        name: "OM_FAULT",
        default: "unset",
        consumer: "om-obs",
        doc: "fault injection: `<site>:<nth>` kills the process (exit 86) on the nth hit",
    },
    EnvVar {
        name: "OM_LOG",
        default: "info",
        consumer: "om-obs",
        doc: "stderr log level gate (error/warn/info/debug/trace)",
    },
    EnvVar {
        name: "OM_OBS",
        default: "off",
        consumer: "om-obs",
        doc: "enable telemetry artifacts (events.jsonl, trace.json, manifest.json)",
    },
    EnvVar {
        name: "OM_OBS_ADDR",
        default: "unset",
        consumer: "om-obs",
        doc: "`host:port` to serve `/metrics`, `/healthz` and `/statz` over HTTP (unset: no socket)",
    },
    EnvVar {
        name: "OM_OBS_DIR",
        default: "results/obs",
        consumer: "om-obs",
        doc: "root directory for observability artifacts",
    },
    EnvVar {
        name: "OM_SERVE_BATCH",
        default: "8",
        consumer: "om-serve",
        doc: "microbatch flush size",
    },
    EnvVar {
        name: "OM_SERVE_QUEUE",
        default: "256",
        consumer: "om-serve",
        doc: "front-end queue bound; past it submits get a typed QueueFull rejection",
    },
    EnvVar {
        name: "OM_SERVE_SHARD",
        default: "8192",
        consumer: "om-serve",
        doc: "item rows scored per shard (bounds peak pair-buffer memory)",
    },
    EnvVar {
        name: "OM_SERVE_TOPK",
        default: "10",
        consumer: "om-serve",
        doc: "recommendations returned per request",
    },
    EnvVar {
        name: "OM_SERVE_WAIT_US",
        default: "2000",
        consumer: "om-serve",
        doc: "max queueing delay before a partial batch flushes (microseconds)",
    },
    EnvVar {
        name: "OM_SERVE_WARM_AFTER",
        default: "5",
        consumer: "om-serve",
        doc: "streamed interactions after which a cold user graduates to warm inference",
    },
    EnvVar {
        name: "OM_SIMD",
        default: "auto",
        consumer: "om-tensor",
        doc: "kernel dispatch: `auto` uses AVX2 when the CPU has it, `off` forces the scalar paths",
    },
    EnvVar {
        name: "OM_THREADS",
        default: "available parallelism",
        consumer: "om-tensor",
        doc: "worker-pool size; results are bit-identical at any value, 1 disables the pool",
    },
];

/// Whether `name` is declared.
pub fn declared(name: &str) -> bool {
    REGISTRY.iter().any(|v| v.name == name)
}

/// The `OM_*` variable name a string literal spells, if any: the leading
/// run of `[A-Z0-9_]` when it starts with `OM_` (so `"OM_FAULT=x:1"`
/// still references `OM_FAULT`).
fn om_name(literal: &str) -> Option<&str> {
    if !literal.starts_with("OM_") {
        return None;
    }
    let end = literal
        .find(|c: char| !(c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
        .unwrap_or(literal.len());
    // Require at least one character after the prefix.
    (end > 3).then(|| &literal[..end])
}

/// Scan one file's string literals: record declared-name usages into
/// `used`, flag undeclared names. `crates/lint/` is exempt (see module
/// docs).
pub fn scan_file(rel: &str, lexed: &LexedFile, used: &mut BTreeSet<String>) -> Vec<Violation> {
    if rel.starts_with("crates/lint/") {
        return Vec::new();
    }
    let mut v = Vec::new();
    for t in &lexed.tokens {
        let TokenKind::Str(s) = &t.kind else {
            continue;
        };
        let Some(name) = om_name(s) else {
            continue;
        };
        if declared(name) {
            used.insert(name.to_string());
        } else {
            v.push(Violation {
                file: rel.to_string(),
                line: t.line,
                rule: "env-registry",
                msg: format!(
                    "undeclared environment variable `{name}`: declare it in \
                     `om_lint::env_registry::REGISTRY` (name, default, consumer, doc) \
                     so `cargo lint -- --env-table` documents it"
                ),
            });
        }
    }
    v
}

/// Registry entries no file references any more.
pub fn check_stale(used: &BTreeSet<String>) -> Vec<Violation> {
    REGISTRY
        .iter()
        .filter(|var| !used.contains(var.name))
        .map(|var| Violation {
            file: "crates/lint/src/env_registry.rs".to_string(),
            line: 1,
            rule: "env-registry",
            msg: format!(
                "registry entry `{}` has no remaining usage in the tree: remove the \
                 entry (and its README table row via `cargo lint -- --env-table`)",
                var.name
            ),
        })
        .collect()
}

/// Render the registry as the markdown table README embeds.
pub fn render_table() -> String {
    let mut out = String::from("| variable | default | consumer | description |\n|---|---|---|---|\n");
    for var in REGISTRY {
        out.push_str(&format!(
            "| `{}` | {} | `{}` | {} |\n",
            var.name, var.default, var.consumer, var.doc
        ));
    }
    out
}

/// The README block between the `om-env-table` markers, if present.
pub fn readme_table_block(readme: &str) -> Option<String> {
    let mut lines = readme.lines();
    lines.by_ref().find(|l| l.contains("om-env-table:begin"))?;
    let mut block = String::new();
    for l in lines {
        if l.contains("om-env-table:end") {
            return Some(block);
        }
        block.push_str(l);
        block.push('\n');
    }
    None
}

/// Check README's embedded table against the registry. `Ok(())` when they
/// match; `Err` explains the drift.
pub fn check_readme(readme: &str) -> Result<(), String> {
    let Some(block) = readme_table_block(readme) else {
        return Err(
            "README.md has no `<!-- om-env-table:begin -->` / `<!-- om-env-table:end -->` \
             block to hold the generated table"
                .to_string(),
        );
    };
    let rendered = render_table();
    if block.trim() == rendered.trim() {
        Ok(())
    } else {
        Err(format!(
            "README.md env-var table has drifted from the registry.\n\
             Regenerate it: `cargo lint -- --env-table` and paste between the markers.\n\
             --- registry renders ---\n{rendered}\
             --- README contains ---\n{block}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let names: Vec<&str> = REGISTRY.iter().map(|v| v.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "REGISTRY must stay alphabetical and unique");
    }

    #[test]
    fn om_name_extracts_prefixes() {
        assert_eq!(om_name("OM_THREADS"), Some("OM_THREADS"));
        assert_eq!(om_name("OM_FAULT=ckpt-save:1"), Some("OM_FAULT"));
        assert_eq!(om_name("OMAB"), None);
        assert_eq!(om_name("OM_"), None);
        assert_eq!(om_name("set OM_THREADS"), None);
    }

    #[test]
    fn readme_block_roundtrip() {
        let readme = format!(
            "# X\n<!-- om-env-table:begin -->\n{}<!-- om-env-table:end -->\n",
            render_table()
        );
        assert!(check_readme(&readme).is_ok());
        assert!(check_readme("# X\nno markers\n").is_err());
        let drifted = readme.replace("OM_THREADS", "OM_THREADZ");
        assert!(check_readme(&drifted).is_err());
    }
}
