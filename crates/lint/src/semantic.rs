//! The semantic (AST-walking) lint passes and the per-crate policy that
//! scopes them.
//!
//! Where the token-level passes in [`crate::passes`] match identifiers,
//! these walk the [`crate::ast`] item tree, so they see *call paths*
//! (`Instant::now`, even passed as a value), method calls with turbofish
//! generics (`.sum::<f32>()`), macro invocations and index expressions —
//! and they know which functions are tests. Three passes:
//!
//! * **determinism** — bans wall-clock time and OS randomness in crates
//!   whose outputs must be bit-reproducible. Unordered-collection
//!   iteration is covered by the stricter `hash-collections` ban (the
//!   types are removed wholesale, so there is nothing left to iterate).
//!   Escape: `// om-lint: nondeterminism-ok(<reason>)` on the line.
//! * **panic-freedom** — bans `unwrap`/`expect`, panicking macros and
//!   direct index expressions in the serving hot path; errors there must
//!   be typed (`ServeError`) so a malformed request degrades one response
//!   instead of killing the worker and every queued request behind it.
//!   Escapes: `// om-lint: panic-ok(<reason>)`,
//!   `// om-lint: indexing-ok(<reason>)`.
//! * **float-reduction** — flags ad-hoc float `sum`/`fold`/accumulator
//!   loops outside the registered kernels. Reduction order is the one
//!   place f32 math silently loses bitwise determinism; every reduction
//!   must either live in `kernels.rs` (where it has a `_serial` parity
//!   twin) or carry `// om-lint: reduction-ok(<reason>)` arguing a fixed
//!   order (accepted on the line or on the enclosing `fn`).
//!
//! Tests (`#[test]` functions, `#[cfg(test)]` modules, files under
//! `tests/` or `benches/`) are exempt from all three: a test may panic
//! and may time itself.
//!
//! [`check_simd_tolerance`] extends kernel-parity registration: a kernel
//! marked `// om-lint: simd` must register a ULP tolerance via
//! `ulp_tolerance("<name>")` in `tests/parity.rs` — the contract ROADMAP
//! item 1 requires before any vectorised kernel lands.

use crate::ast::{self, ArgHead, Event, FnItem};
use crate::lexer::{LexedFile, TokenKind};
use crate::passes::{self, Violation};

/// Per-crate scoping of the semantic passes. One instance —
/// [`Policy::default_policy`] — describes the whole workspace; fixtures
/// construct narrower ones.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Crate prefixes where wall-clock time and OS randomness are banned.
    pub determinism_crates: &'static [&'static str],
    /// Files forming the serving hot path: panic-free, index-free.
    pub panic_free_files: &'static [&'static str],
    /// Crate prefixes where ad-hoc float reductions are flagged.
    pub reduction_crates: &'static [&'static str],
    /// Files exempt from the reduction pass (the kernel suite, which has
    /// serial-twin parity oracles instead).
    pub reduction_exempt: &'static [&'static str],
}

/// Crates whose outputs feed published tables or served responses: any
/// wall-clock read or OS-random draw here can change numbers between
/// runs. `crates/obs` owns the sanctioned monotonic clock
/// (`om_obs::clock::now_ns`), `crates/bench` measures time by design, and
/// `crates/lint` analyses rather than computes — all three are out of
/// scope.
pub const DETERMINISM_CRATES: &[&str] = &[
    "crates/tensor/",
    "crates/nn/",
    "crates/core/",
    "crates/metrics/",
    "crates/data/",
    "crates/baselines/",
    "crates/experiments/",
    "crates/serve/",
];

/// The serving hot path: every request flows through these four modules,
/// so a panic in any of them kills the worker thread and every queued
/// request behind it. Setup/loading code (`blob.rs`, `arena.rs`,
/// `loader.rs`, `mmap.rs`) runs before traffic and may assert.
pub const PANIC_FREE_FILES: &[&str] = &[
    "crates/serve/src/engine.rs",
    "crates/serve/src/shard.rs",
    "crates/serve/src/frontend.rs",
    "crates/serve/src/batcher.rs",
    "crates/serve/src/update.rs",
    "crates/obs/src/live.rs",
    "crates/obs/src/http.rs",
    "crates/obs/src/flightrec.rs",
];

/// Crates whose float math feeds model outputs.
pub const REDUCTION_CRATES: &[&str] = &[
    "crates/tensor/",
    "crates/nn/",
    "crates/core/",
    "crates/serve/",
];

/// Files exempt from the reduction pass: the kernel suite itself and its
/// AVX2 microkernel module — both define the fixed-order reductions the
/// parity suite oracles, so the pass would only flag the oracles.
pub const REDUCTION_EXEMPT: &[&str] = &["crates/tensor/src/kernels.rs", "crates/tensor/src/simd.rs"];

impl Policy {
    /// The workspace policy.
    pub fn default_policy() -> Policy {
        Policy {
            determinism_crates: DETERMINISM_CRATES,
            panic_free_files: PANIC_FREE_FILES,
            reduction_crates: REDUCTION_CRATES,
            reduction_exempt: REDUCTION_EXEMPT,
        }
    }
}

/// Whether `rel` is test or bench code by location.
fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/")
}

fn marked(lexed: &LexedFile, line: usize, marker: &str) -> bool {
    lexed.comment_block_above(line).contains(marker)
}

/// Call paths whose *suffix* (last two segments) reads a wall clock or an
/// OS random source. Matching the suffix catches `Instant::now`,
/// `std::time::Instant::now` and `time::Instant::now` alike, called or
/// passed as a value.
const NONDETERMINISTIC_SUFFIXES: &[[&str; 2]] = &[
    ["Instant", "now"],
    ["SystemTime", "now"],
    ["RandomState", "new"],
    ["rand", "thread_rng"],
    ["rand", "random"],
];

/// Single identifiers that are nondeterministic wherever they resolve
/// from.
const NONDETERMINISTIC_IDENTS: &[&str] = &["thread_rng"];

/// The determinism pass: no wall-clock time, no OS randomness in
/// [`Policy::determinism_crates`].
pub fn check_determinism(
    rel: &str,
    lexed: &LexedFile,
    file: &ast::File,
    policy: &Policy,
) -> Vec<Violation> {
    if is_test_path(rel) || !policy.determinism_crates.iter().any(|c| rel.starts_with(c)) {
        return Vec::new();
    }
    let mut v = Vec::new();
    ast::walk_fns(file, |f, in_test| {
        if in_test {
            return;
        }
        for e in &f.events {
            let Event::Path { segments, line, .. } = e else {
                continue;
            };
            let suffix_hit = segments.len() >= 2
                && NONDETERMINISTIC_SUFFIXES.iter().any(|[a, b]| {
                    segments[segments.len() - 2] == *a && segments[segments.len() - 1] == *b
                });
            let ident_hit = segments.len() == 1
                && NONDETERMINISTIC_IDENTS.contains(&segments[0].as_str());
            if !(suffix_hit || ident_hit) {
                continue;
            }
            if marked(lexed, *line, "om-lint: nondeterminism-ok") {
                continue;
            }
            v.push(Violation {
                file: rel.to_string(),
                line: *line,
                rule: "determinism",
                msg: format!(
                    "`{}` reads wall-clock time or OS randomness in a \
                     determinism-policy crate: use `om_obs::clock::now_ns()` for \
                     telemetry timing or a seeded generator, or mark the line \
                     `// om-lint: nondeterminism-ok(<reason>)`",
                    segments.join("::")
                ),
            });
        }
    });
    v
}

/// Macros that abort the thread.
const PANICKING_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// The panic-freedom pass over [`Policy::panic_free_files`].
pub fn check_panic_freedom(
    rel: &str,
    lexed: &LexedFile,
    file: &ast::File,
    policy: &Policy,
) -> Vec<Violation> {
    if !policy.panic_free_files.contains(&rel) {
        return Vec::new();
    }
    let mut v = Vec::new();
    ast::walk_fns(file, |f, in_test| {
        if in_test {
            return;
        }
        for e in &f.events {
            match e {
                Event::Method { name, line, .. } if name == "unwrap" || name == "expect" => {
                    if marked(lexed, *line, "om-lint: panic-ok") {
                        continue;
                    }
                    v.push(Violation {
                        file: rel.to_string(),
                        line: *line,
                        rule: "panic-freedom",
                        msg: format!(
                            "`.{name}()` in the serving hot path: a panic here kills \
                             the worker and every queued request; return a typed \
                             `ServeError` instead, or mark the line \
                             `// om-lint: panic-ok(<reason>)`"
                        ),
                    });
                }
                Event::Macro { name, line } if PANICKING_MACROS.contains(&name.as_str()) => {
                    if marked(lexed, *line, "om-lint: panic-ok") {
                        continue;
                    }
                    v.push(Violation {
                        file: rel.to_string(),
                        line: *line,
                        rule: "panic-freedom",
                        msg: format!(
                            "`{name}!` in the serving hot path: return a typed \
                             `ServeError` instead (debug_assert! is allowed), or mark \
                             the line `// om-lint: panic-ok(<reason>)`"
                        ),
                    });
                }
                Event::Index { line, .. } => {
                    if marked(lexed, *line, "om-lint: indexing-ok") {
                        continue;
                    }
                    v.push(Violation {
                        file: rel.to_string(),
                        line: *line,
                        rule: "panic-freedom",
                        msg: "direct index expression in the serving hot path: a bad \
                              index panics the worker; use `.get()`, iterators or \
                              `chunks_exact`, or mark the line \
                              `// om-lint: indexing-ok(<reason>)`"
                            .to_string(),
                    });
                }
                _ => {}
            }
        }
    });
    v
}

/// Whether a numeric literal is a float (`0.0`, `1e-3` is not lexed as a
/// single number here, but every real site uses a dot or a typed suffix).
fn is_float_literal(n: &str) -> bool {
    n.contains('.') || n.ends_with("f32") || n.ends_with("f64")
}

/// Whether the statement around token index `tok` mentions a float type
/// or float literal. The statement is the token span between the nearest
/// `;`/`{`/`}` on each side.
fn stmt_has_float(lexed: &LexedFile, tok: usize, body: (usize, usize)) -> bool {
    let toks = &lexed.tokens;
    let lo = (body.0..tok.min(toks.len()))
        .rev()
        .find(|&i| matches!(toks[i].kind, TokenKind::Punct(';' | '{' | '}')))
        .map(|i| i + 1)
        .unwrap_or(body.0);
    let hi = (tok..body.1.min(toks.len()))
        .find(|&i| matches!(toks[i].kind, TokenKind::Punct(';' | '{' | '}')))
        .unwrap_or(body.1.min(toks.len()));
    toks[lo..hi].iter().any(|t| match &t.kind {
        TokenKind::Ident(s) => s == "f32" || s == "f64",
        TokenKind::Num(n) => is_float_literal(n),
        _ => false,
    })
}

fn reduction_marked(lexed: &LexedFile, f: &FnItem, line: usize) -> bool {
    marked(lexed, line, "om-lint: reduction-ok") || marked(lexed, f.line, "om-lint: reduction-ok")
}

/// The float-reduction pass: ad-hoc float `sum`/`product`/`fold` calls
/// and `let mut acc = 0.0; ... acc += ...` loops outside the kernel
/// suite. The marker is accepted on the flagged line or on the enclosing
/// `fn` (an optimizer stats function may hold five accumulators; one
/// argued marker beats five copies).
pub fn check_float_reduction(
    rel: &str,
    lexed: &LexedFile,
    file: &ast::File,
    policy: &Policy,
) -> Vec<Violation> {
    if is_test_path(rel)
        || policy.reduction_exempt.contains(&rel)
        || !policy.reduction_crates.iter().any(|c| rel.starts_with(c))
    {
        return Vec::new();
    }
    let mut v = Vec::new();
    ast::walk_fns(file, |f, in_test| {
        if in_test {
            return;
        }
        for e in &f.events {
            let Event::Method {
                name,
                generics,
                first_arg,
                line,
                tok,
            } = e
            else {
                continue;
            };
            let flagged = match name.as_str() {
                "sum" | "product" => {
                    if generics.iter().any(|g| g == "f32" || g == "f64") {
                        true
                    } else if !generics.is_empty() {
                        false // sum::<usize>() and friends
                    } else {
                        f.body
                            .map(|b| stmt_has_float(lexed, *tok, b))
                            .unwrap_or(false)
                    }
                }
                "fold" => matches!(
                    first_arg,
                    Some(ArgHead::Num(n)) if is_float_literal(n)
                ) || matches!(
                    first_arg,
                    Some(ArgHead::Ident(i)) if i == "f32" || i == "f64"
                ),
                _ => false,
            };
            if !flagged || reduction_marked(lexed, f, *line) {
                continue;
            }
            v.push(Violation {
                file: rel.to_string(),
                line: *line,
                rule: "float-reduction",
                msg: format!(
                    "ad-hoc float `.{name}(...)` outside the kernel suite: reduction \
                     order decides the bit pattern; use a kernel with a `_serial` \
                     parity twin, or mark the line or enclosing fn \
                     `// om-lint: reduction-ok(<reason>)` arguing a fixed order"
                ),
            });
        }
        // Scalar accumulator loops: `let mut x = <float>; ... x += ...`.
        let Some((lo, hi)) = f.body else {
            return;
        };
        let toks = &lexed.tokens;
        let hi = hi.min(toks.len());
        let idents_eq = |i: usize, s: &str| {
            matches!(toks.get(i).map(|t| &t.kind), Some(TokenKind::Ident(x)) if x == s)
        };
        for i in lo..hi {
            if !(idents_eq(i, "let") && idents_eq(i + 1, "mut")) {
                continue;
            }
            let Some(TokenKind::Ident(name)) = toks.get(i + 2).map(|t| &t.kind) else {
                continue;
            };
            // Scan `[: Type] = <init>` up to the statement end; float if
            // the annotation or the initialiser head is a float.
            let mut j = i + 3;
            let mut saw_eq = false;
            let mut is_float = false;
            while j < hi && j < i + 12 {
                match &toks[j].kind {
                    TokenKind::Punct(';') => break,
                    TokenKind::Punct('=') => saw_eq = true,
                    TokenKind::Ident(s) if s == "f32" || s == "f64" => is_float = true,
                    TokenKind::Num(n) if saw_eq => {
                        is_float = is_float || is_float_literal(n);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if !is_float {
                continue;
            }
            // Accumulation: `name +=` or `name *=` later in the body.
            let accumulates = (j..hi.saturating_sub(2)).any(|k| {
                idents_eq(k, name)
                    && matches!(toks[k + 1].kind, TokenKind::Punct('+' | '*'))
                    && matches!(toks[k + 2].kind, TokenKind::Punct('='))
            });
            let line = toks[i].line;
            if !accumulates || reduction_marked(lexed, f, line) {
                continue;
            }
            v.push(Violation {
                file: rel.to_string(),
                line,
                rule: "float-reduction",
                msg: format!(
                    "scalar float accumulator `{name}` outside the kernel suite: \
                     reduction order decides the bit pattern; use a kernel with a \
                     `_serial` parity twin, or mark the line or enclosing fn \
                     `// om-lint: reduction-ok(<reason>)` arguing a fixed order"
                ),
            });
        }
    });
    v
}

/// SIMD tolerance registration: every top-level `pub fn` in `kernels.rs`
/// marked `// om-lint: simd` must appear in a `ulp_tolerance("<name>")`
/// call in `tests/parity.rs`, so the vectorised kernel's accepted ULP
/// drift is a reviewed constant, not an accident.
pub fn check_simd_tolerance(
    kernels_rel: &str,
    kernels: &LexedFile,
    parity: &LexedFile,
) -> Vec<Violation> {
    let mut v = Vec::new();
    for (line, name) in passes::top_level_pub_fns(kernels) {
        if !kernels.comment_block_above(line).contains("om-lint: simd") {
            continue;
        }
        let registered = parity.tokens.windows(3).any(|w| {
            matches!(&w[0].kind, TokenKind::Ident(i) if i == "ulp_tolerance")
                && matches!(w[1].kind, TokenKind::Punct('('))
                && matches!(&w[2].kind, TokenKind::Str(s) if s == &name)
        });
        if !registered {
            v.push(Violation {
                file: kernels_rel.to_string(),
                line,
                rule: "simd-ulp-tolerance",
                msg: format!(
                    "kernel `{name}` is marked `// om-lint: simd` but registers no \
                     ULP tolerance: add `ulp_tolerance(\"{name}\")` to \
                     tests/parity.rs with the accepted drift"
                ),
            });
        }
    }
    v
}
