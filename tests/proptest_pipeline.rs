//! Property-based tests over the data pipeline: split invariants, synthetic
//! generator invariants, and Algorithm 1 invariants hold for *randomised*
//! configurations, not just the defaults.

use omnimatch::core::AuxiliaryReviewGenerator;
use omnimatch::data::types::TextField;
use omnimatch::data::{SplitConfig, SynthConfig, SynthWorld};
use omnimatch::tensor::seeded_rng;
use proptest::prelude::*;

fn small_world(seed: u64, n_users: usize) -> SynthWorld {
    let cfg = SynthConfig {
        n_users,
        n_items: (n_users / 2).max(10),
        seed,
        ..SynthConfig::tiny()
    };
    SynthWorld::generate(cfg, &["Books", "Movies"])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn split_partitions_for_any_seed(seed in 0u64..1000, frac in 0.2f32..1.0) {
        let world = small_world(7, 50);
        let sc = world.scenario("Books", "Movies", SplitConfig {
            seed,
            train_fraction: frac,
            ..SplitConfig::default()
        });
        // train/valid/test are pairwise disjoint subsets of the overlap
        for u in &sc.train_users {
            prop_assert!(sc.overlapping.contains(u));
            prop_assert!(!sc.valid_users.contains(u));
            prop_assert!(!sc.test_users.contains(u));
        }
        for u in &sc.valid_users {
            prop_assert!(!sc.test_users.contains(u));
        }
        // no cold-start user leaks target reviews into training
        for u in sc.cold_start_users() {
            prop_assert!(!sc.target_train.contains_user(u));
        }
        // fraction only shrinks training
        prop_assert!(!sc.train_users.is_empty());
    }

    #[test]
    fn generator_ratings_always_in_range(seed in 0u64..1000) {
        let world = small_world(seed, 30);
        for it in world.domain("Books").interactions() {
            let s = it.rating.stars();
            prop_assert!((1..=5).contains(&s));
            prop_assert!(!it.summary.is_empty());
            prop_assert!(it.full_text.len() >= it.summary.len());
        }
    }

    #[test]
    fn aux_documents_only_cite_training_donors(seed in 0u64..500) {
        let world = small_world(11, 60);
        let sc = world.scenario("Books", "Movies", SplitConfig {
            seed,
            ..SplitConfig::default()
        });
        let generator = AuxiliaryReviewGenerator::new(&sc);
        let mut rng = seeded_rng(seed);
        for &u in sc.test_users.iter().take(3) {
            let doc = generator.generate(u, TextField::Summary, &mut rng);
            prop_assert_eq!(doc.reviews.len(), doc.steps.len());
            for step in &doc.steps {
                prop_assert!(sc.train_users.contains(&step.chosen_user));
                // the donated review really exists in the visible corpus
                let exists = sc
                    .target_train
                    .user_records(step.chosen_user)
                    .any(|it| it.summary == step.aux_review);
                prop_assert!(exists, "donated review not found in corpus");
                // like-mindedness: the donor gave the same source item the
                // same rating
                let matches = sc
                    .source
                    .user_records(step.chosen_user)
                    .any(|it| it.item == step.source_item && it.rating == step.rating);
                prop_assert!(matches, "donor is not actually like-minded");
            }
        }
    }

    #[test]
    fn rmse_mae_relationship_on_random_predictions(
        preds in proptest::collection::vec(1.0f32..5.0, 5..40),
        seed in 0u64..100,
    ) {
        let mut rng = seeded_rng(seed);
        use rand::RngExt as _;
        let pairs: Vec<(f32, f32)> = preds
            .iter()
            .map(|&p| (p, rng.random_range(1.0f32..5.0)))
            .collect();
        let rmse = omnimatch::metrics::rmse(&pairs);
        let mae = omnimatch::metrics::mae(&pairs);
        prop_assert!(mae <= rmse + 1e-5);
        prop_assert!(rmse <= 4.0 + 1e-5);
    }
}
