//! Leveled logging facade — the structured replacement for the scattered
//! `eprintln!` progress output (om-lint bans raw prints in model-path
//! crates; this module is the sanctioned route).
//!
//! Two independent destinations:
//!
//! * **stderr**, gated by `OM_LOG` (`error|warn|info|debug|trace`, default
//!   `info`) or [`set_level`]. Always available, even with observability
//!   off, so progress output behaves exactly like the `eprintln!` it
//!   replaces.
//! * **the event stream**, one `{"kind":"log",...}` record per call, only
//!   while [`crate::enabled`] — so a run's artifact carries its own log.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

use crate::sink::{self, Value};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or wrong-result conditions.
    Error = 0,
    /// Suspicious but tolerated conditions.
    Warn = 1,
    /// Progress output (the default visibility).
    Info = 2,
    /// Per-step details, hidden by default.
    Debug = 3,
    /// Firehose.
    Trace = 4,
}

impl Level {
    /// Lower-case name as written in `OM_LOG` and the event stream.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_env(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "e" | "0" => Some(Level::Error),
            "warn" | "warning" | "w" | "1" => Some(Level::Warn),
            "info" | "i" | "2" => Some(Level::Info),
            "debug" | "d" | "3" => Some(Level::Debug),
            "trace" | "t" | "4" => Some(Level::Trace),
            _ => None,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static ENV_INIT: Once = Once::new();

fn ensure_env() {
    ENV_INIT.call_once(|| {
        if let Some(l) = std::env::var("OM_LOG").ok().as_deref().and_then(Level::from_env) {
            LEVEL.store(l as u8, Ordering::Relaxed);
        }
    });
}

/// The current stderr verbosity.
pub fn level() -> Level {
    ensure_env();
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Override the stderr verbosity (wins over `OM_LOG`). Returns the
/// previous level.
pub fn set_level(l: Level) -> Level {
    ensure_env();
    let prev = level();
    LEVEL.store(l as u8, Ordering::Relaxed);
    prev
}

/// Backend of the `error!`/`warn!`/`info!`/`debug!` macros. Formats once,
/// then fans out to stderr (if `l` is visible at the current [`level`])
/// and, when observability is enabled, into the event stream.
pub fn log(l: Level, module: &'static str, args: std::fmt::Arguments<'_>) {
    let to_stderr = l <= level();
    let to_stream = crate::enabled();
    if !to_stderr && !to_stream {
        return;
    }
    let msg = args.to_string();
    if to_stderr {
        eprintln!("[{} {module}] {msg}", name_padded(l));
    }
    if to_stream {
        sink::emit(
            "log",
            &[
                ("level", Value::from(l.name())),
                ("module", Value::from(module)),
                ("msg", Value::Str(msg)),
            ],
        );
    }
}

fn name_padded(l: Level) -> &'static str {
    match l {
        Level::Error => "ERROR",
        Level::Warn => "WARN ",
        Level::Info => "INFO ",
        Level::Debug => "DEBUG",
        Level::Trace => "TRACE",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
    }

    #[test]
    fn env_names_parse() {
        assert_eq!(Level::from_env("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::from_env(" warn "), Some(Level::Warn));
        assert_eq!(Level::from_env("nope"), None);
    }

    #[test]
    fn set_level_roundtrip() {
        let prev = set_level(Level::Error);
        assert_eq!(level(), Level::Error);
        set_level(prev);
    }
}
