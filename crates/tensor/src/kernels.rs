//! Compute kernels behind the tensor ops: a register-blocked parallel GEMM,
//! deterministic chunked reductions and parallel map/zip primitives.
//!
//! Every kernel here is **bitwise deterministic across thread counts**: for
//! a given input, the output is identical whether the runtime uses one
//! thread or many. Two mechanisms guarantee this:
//!
//! * *Partition-independent outputs.* GEMM rows, softmax rows and
//!   elementwise chunks each own a disjoint output region whose value
//!   depends only on the inputs, never on which thread computed a
//!   neighbouring region. Within one output element, floating-point
//!   accumulation order is fixed (`k` increasing for GEMM, left-to-right
//!   for row sums).
//! * *Fixed-shape reductions.* Full reductions ([`sum`]) split the input
//!   into fixed [`REDUCE_CHUNK`]-element chunks regardless of the thread
//!   count, reduce each chunk left-to-right, and combine the partials in
//!   chunk order on the calling thread.
//!
//! The serial reference kernels (`*_serial`) are kept callable so the
//! parity test-suite can assert bit-identical results against the parallel
//! paths.
//!
//! Hot loops additionally dispatch to the AVX2 microkernels in
//! [`crate::simd`] when the CPU supports them (override with
//! `OM_SIMD=off`). The serial twins always stay scalar: they are the
//! parity oracle. Kernels whose vector port preserves the exact scalar
//! operation sequence (GEMM, elementwise, `pair_rows`, dequantisation)
//! remain bitwise identical to their twins; reordered reductions ([`sum`])
//! and the polynomial-exp softmax row match within a registered ULP
//! tolerance (see `tests/parity.rs`).

use std::sync::OnceLock;

use crate::runtime;

/// Elements per reduction chunk. Fixed so the combining tree of [`sum`]
/// never depends on the thread count.
pub const REDUCE_CHUNK: usize = 4096;

/// Cached GEMM counters: calls, multiply-add flops (2·m·n·k) and bytes
/// touched (a + b streamed once, c read+written). Only bumped when
/// observability is enabled; gives `obs-report` the arithmetic-intensity
/// side of every run.
struct GemmObs {
    calls: om_obs::metrics::Counter,
    flops: om_obs::metrics::Counter,
    bytes: om_obs::metrics::Counter,
}

#[cold]
fn gemm_obs(m: usize, k: usize, n: usize) {
    static H: OnceLock<GemmObs> = OnceLock::new();
    let h = H.get_or_init(|| GemmObs {
        calls: om_obs::metrics::counter("gemm.calls"),
        flops: om_obs::metrics::counter("gemm.flops"),
        bytes: om_obs::metrics::counter("gemm.bytes"),
    });
    h.calls.add(1);
    h.flops.add(2 * (m * n * k) as u64);
    h.bytes.add(4 * (m * k + k * n + 2 * m * n) as u64);
}

/// Minimum elements before an elementwise loop is worth parallelising.
const MAP_GRAIN: usize = 16 * 1024;

/// Minimum multiply-adds before the GEMM goes parallel.
const GEMM_PAR_FLOPS: usize = 64 * 1024;

/// Rows per GEMM task; also the micro-panel height unit.
const GEMM_ROW_GRAIN: usize = 8;

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

/// Reference row-major GEMM, `c[m,n] += a[m,k] · b[k,n]`, single thread.
///
/// The ikj loop order keeps the inner loop contiguous over `b` and `c`;
/// rows of `a` that are exactly zero at position `p` are skipped, which is
/// a real win for the zero-padded rows produced by `unfold_windows`.
pub fn gemm_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// Compute rows `[row0, row0+rows)` of the product into `c_block` (which
/// holds exactly those rows), processing four rows at a time so each
/// streamed row of `b` is reused fourfold.
///
/// Per output element the accumulation order is `p = 0..k`, identical to
/// [`gemm_serial`]; adding an exact-zero product is a bitwise no-op for
/// finite inputs, so the relaxed skip condition (all four lanes zero)
/// cannot change results.
fn gemm_rows(a: &[f32], b: &[f32], c_block: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    if crate::simd::gemm_rows(a, b, c_block, row0, rows, k, n) {
        return;
    }
    let mut i = 0;
    while i + 4 <= rows {
        let (r0, r1, r2, r3) = (row0 + i, row0 + i + 1, row0 + i + 2, row0 + i + 3);
        // Four independent accumulator rows inside the block.
        let (c01, c23) = c_block[i * n..(i + 4) * n].split_at_mut(2 * n);
        let (c0, c1) = c01.split_at_mut(n);
        let (c2, c3) = c23.split_at_mut(n);
        for p in 0..k {
            let a0 = a[r0 * k + p];
            let a1 = a[r1 * k + p];
            let a2 = a[r2 * k + p];
            let a3 = a[r3 * k + p];
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for j in 0..n {
                let bv = b_row[j];
                c0[j] += a0 * bv;
                c1[j] += a1 * bv;
                c2[j] += a2 * bv;
                c3[j] += a3 * bv;
            }
        }
        i += 4;
    }
    // Ragged tail: plain single-row kernel, same per-element order.
    while i < rows {
        let r = row0 + i;
        let c_row = &mut c_block[i * n..(i + 1) * n];
        for p in 0..k {
            let a_ip = a[r * k + p];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
        i += 1;
    }
}

/// Row-major GEMM `c[m,n] += a[m,k] · b[k,n]`, parallel over row blocks.
///
/// Bitwise identical to [`gemm_serial`] for finite inputs at any thread
/// count (see module docs).
// om-lint: simd — inner-product kernel; a vectorised port must register
// its ULP tolerance in tests/parity.rs (ulp_tolerance("gemm")).
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if n == 0 || m == 0 {
        return;
    }
    let obs_on = om_obs::enabled();
    if obs_on {
        gemm_obs(m, k, n);
    }
    if m * n * k < GEMM_PAR_FLOPS {
        gemm_rows(a, b, c, 0, m, k, n);
        return;
    }
    // Only above-threshold GEMMs get a span: one record per dispatch-sized
    // multiply, nothing on the small-matrix fast path.
    let _span = om_obs::trace::span_if(obs_on, "kernels.gemm");
    // Keep at least GEMM_ROW_GRAIN rows per task unless the matrix is wide
    // enough that even single rows amortise the dispatch.
    let grain = if n * k >= 64 * 1024 { 1 } else { GEMM_ROW_GRAIN };
    runtime::parallel_rows_mut(c, n, grain, |row0, block| {
        gemm_rows(a, b, block, row0, block.len() / n, k, n);
    });
}

/// Transpose a row-major `[m,n]` matrix into `[n,m]`.
pub fn transpose(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    if m * n >= MAP_GRAIN {
        // Each output row j gathers column j of `a`; rows are disjoint.
        runtime::parallel_rows_mut(&mut out, m, 8, |j0, block| {
            for (dj, orow) in block.chunks_mut(m).enumerate() {
                let j = j0 + dj;
                for (i, o) in orow.iter_mut().enumerate() {
                    *o = a[i * n + j];
                }
            }
        });
    } else {
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
    }
    out
}

/// Serial twin of [`transpose`] — plain nested loops, never parallel.
pub fn transpose_serial(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Left-to-right scalar sum of one chunk — the oracle building block of
/// [`sum_serial`].
#[inline]
fn chunk_sum_scalar(x: &[f32]) -> f32 {
    x.iter().sum()
}

/// Sum of one chunk, vectorised when AVX2 dispatch is active. The vector
/// path reorders the additions across lanes (fixed lane shape, so still
/// input-deterministic) — covered by the `sum` ULP tolerance.
#[inline]
fn chunk_sum(x: &[f32]) -> f32 {
    match crate::simd::sum_chunk(x) {
        Some(s) => s,
        None => chunk_sum_scalar(x),
    }
}

/// Deterministic chunked sum: identical bits at every thread count.
///
/// The input is cut into fixed [`REDUCE_CHUNK`]-element chunks; partials
/// are computed (possibly in parallel) and combined left-to-right.
// om-lint: simd — reduction kernel; a vectorised port must register its
// ULP tolerance in tests/parity.rs (ulp_tolerance("sum")).
pub fn sum(x: &[f32]) -> f32 {
    if x.len() <= REDUCE_CHUNK {
        return chunk_sum(x);
    }
    let chunks = x.len().div_ceil(REDUCE_CHUNK);
    let mut partials = vec![0.0f32; chunks];
    runtime::parallel_rows_mut(&mut partials, 1, 4, |c0, block| {
        for (dc, slot) in block.iter_mut().enumerate() {
            let c = c0 + dc;
            let lo = c * REDUCE_CHUNK;
            let hi = ((c + 1) * REDUCE_CHUNK).min(x.len());
            *slot = chunk_sum(&x[lo..hi]);
        }
    });
    chunk_sum(&partials)
}

/// Serial twin of [`sum`] — same chunking, always scalar, never parallel.
/// Bit-equal to [`sum`] under scalar dispatch; the AVX2 path matches it
/// within the registered ULP tolerance.
pub fn sum_serial(x: &[f32]) -> f32 {
    if x.len() <= REDUCE_CHUNK {
        return chunk_sum_scalar(x);
    }
    let partials: Vec<f32> = x.chunks(REDUCE_CHUNK).map(chunk_sum_scalar).collect();
    chunk_sum_scalar(&partials)
}

// ---------------------------------------------------------------------------
// Elementwise maps
// ---------------------------------------------------------------------------

/// Parallel elementwise map: `out[i] = f(x[i])`.
pub fn map(x: &[f32], f: impl Fn(f32) -> f32 + Sync) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    runtime::parallel_rows_mut(&mut out, 1, MAP_GRAIN, |i0, block| {
        for (d, o) in block.iter_mut().enumerate() {
            *o = f(x[i0 + d]);
        }
    });
    out
}

/// Serial twin of [`map`] — a plain scalar loop, never parallel.
pub fn map_serial(x: &[f32], f: impl Fn(f32) -> f32) -> Vec<f32> {
    x.iter().map(|&v| f(v)).collect()
}

/// Parallel elementwise zip: `out[i] = f(a[i], b[i])`.
pub fn zip_map(a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "zip_map: length mismatch");
    let mut out = vec![0.0f32; a.len()];
    runtime::parallel_rows_mut(&mut out, 1, MAP_GRAIN, |i0, block| {
        for (d, o) in block.iter_mut().enumerate() {
            *o = f(a[i0 + d], b[i0 + d]);
        }
    });
    out
}

/// Serial twin of [`zip_map`] — a plain scalar loop, never parallel.
pub fn zip_map_serial(a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "zip_map_serial: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
}

/// Parallel elementwise add: `out[i] = a[i] + b[i]`, vectorised. Lanewise,
/// so bitwise identical to the serial twin under any dispatch mode.
// om-lint: simd — lanewise kernel; tolerance registered in tests/parity.rs
// (ulp_tolerance("add_slices") = 0, bitwise).
pub fn add_slices(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add_slices: length mismatch");
    let mut out = vec![0.0f32; a.len()];
    runtime::parallel_rows_mut(&mut out, 1, MAP_GRAIN, |i0, block| {
        let (ab, bb) = (&a[i0..i0 + block.len()], &b[i0..i0 + block.len()]);
        if crate::simd::add_chunk(ab, bb, block) {
            return;
        }
        for (o, (&x, &y)) in block.iter_mut().zip(ab.iter().zip(bb)) {
            *o = x + y;
        }
    });
    out
}

/// Serial twin of [`add_slices`] — plain scalar loop, never parallel.
pub fn add_slices_serial(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add_slices_serial: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Parallel elementwise subtract: `out[i] = a[i] - b[i]`, vectorised.
// om-lint: simd — lanewise kernel; tolerance registered in tests/parity.rs
// (ulp_tolerance("sub_slices") = 0, bitwise).
pub fn sub_slices(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub_slices: length mismatch");
    let mut out = vec![0.0f32; a.len()];
    runtime::parallel_rows_mut(&mut out, 1, MAP_GRAIN, |i0, block| {
        let (ab, bb) = (&a[i0..i0 + block.len()], &b[i0..i0 + block.len()]);
        if crate::simd::sub_chunk(ab, bb, block) {
            return;
        }
        for (o, (&x, &y)) in block.iter_mut().zip(ab.iter().zip(bb)) {
            *o = x - y;
        }
    });
    out
}

/// Serial twin of [`sub_slices`] — plain scalar loop, never parallel.
pub fn sub_slices_serial(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub_slices_serial: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Parallel elementwise multiply: `out[i] = a[i] * b[i]`, vectorised.
// om-lint: simd — lanewise kernel; tolerance registered in tests/parity.rs
// (ulp_tolerance("mul_slices") = 0, bitwise).
pub fn mul_slices(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "mul_slices: length mismatch");
    let mut out = vec![0.0f32; a.len()];
    runtime::parallel_rows_mut(&mut out, 1, MAP_GRAIN, |i0, block| {
        let (ab, bb) = (&a[i0..i0 + block.len()], &b[i0..i0 + block.len()]);
        if crate::simd::mul_chunk(ab, bb, block) {
            return;
        }
        for (o, (&x, &y)) in block.iter_mut().zip(ab.iter().zip(bb)) {
            *o = x * y;
        }
    });
    out
}

/// Serial twin of [`mul_slices`] — plain scalar loop, never parallel.
pub fn mul_slices_serial(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "mul_slices_serial: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

/// Parallel scalar multiply: `out[i] = x[i] * s`, vectorised.
// om-lint: simd — lanewise kernel; tolerance registered in tests/parity.rs
// (ulp_tolerance("scale_slice") = 0, bitwise).
pub fn scale_slice(x: &[f32], s: f32) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    runtime::parallel_rows_mut(&mut out, 1, MAP_GRAIN, |i0, block| {
        let xb = &x[i0..i0 + block.len()];
        if crate::simd::scale_chunk(xb, s, block) {
            return;
        }
        for (o, &v) in block.iter_mut().zip(xb) {
            *o = v * s;
        }
    });
    out
}

/// Serial twin of [`scale_slice`] — plain scalar loop, never parallel.
pub fn scale_slice_serial(x: &[f32], s: f32) -> Vec<f32> {
    x.iter().map(|&v| v * s).collect()
}

/// Parallel indexed map: `out[i] = f(i)`. For broadcast patterns that need
/// the flat index (e.g. row-vector broadcast `x[i] + row[i % n]`).
pub fn map_indexed(len: usize, f: impl Fn(usize) -> f32 + Sync) -> Vec<f32> {
    let mut out = vec![0.0f32; len];
    runtime::parallel_rows_mut(&mut out, 1, MAP_GRAIN, |i0, block| {
        for (d, o) in block.iter_mut().enumerate() {
            *o = f(i0 + d);
        }
    });
    out
}

/// Serial twin of [`map_indexed`] — a plain indexed loop, never parallel.
pub fn map_indexed_serial(len: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
    (0..len).map(f).collect()
}

/// Minimum f32 cells per [`fill_rows`] task. Callers pass a row grain that
/// reflects per-row compute, but narrow rows would otherwise ship tasks far
/// below a few microseconds of work; the grain is floored so every task
/// covers at least this many cells. Pure performance tuning — the fills are
/// partition-independent, so the grain never affects results.
const FILL_GRAIN_CELLS: usize = 4096;

/// Parallel per-row fill of an `[rows, row_len]` buffer: `f(row_index,
/// row_slice)` runs once per row, rows distributed over threads. The
/// canonical primitive for softmax, normalisation and unfold kernels.
pub fn fill_rows(rows: usize, row_len: usize, grain_rows: usize, f: impl Fn(usize, &mut [f32]) + Sync) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * row_len];
    let grain_rows = grain_rows.max(FILL_GRAIN_CELLS / row_len.max(1));
    runtime::parallel_rows_mut(&mut out, row_len.max(1), grain_rows, |r0, block| {
        for (dr, row) in block.chunks_mut(row_len.max(1)).enumerate() {
            f(r0 + dr, row);
        }
    });
    out
}

/// Serial twin of [`fill_rows`] — one row at a time, never parallel.
pub fn fill_rows_serial(rows: usize, row_len: usize, f: impl Fn(usize, &mut [f32])) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * row_len];
    for (r, row) in out.chunks_mut(row_len.max(1)).enumerate() {
        f(r, row);
    }
    out
}

/// Numerically-stable log-softmax of one row, scalar, written into `out`.
// om-lint: reduction-ok(serial per-row max/sum in element order; fill_rows
// partitions by whole rows, so the order never depends on thread count)
fn log_softmax_row_scalar(row: &[f32], out: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for &x in row {
        sum += (x - max).exp();
    }
    let lse = max + sum.ln();
    for (o, &x) in out.iter_mut().zip(row) {
        *o = x - lse;
    }
}

/// Row-wise log-softmax of an `[rows, cols]` matrix: each output row is a
/// log-probability distribution. Rows are partition-independent; the AVX2
/// path substitutes a polynomial `exp` and a lane-parallel exp-sum, so it
/// matches the serial twin within the registered ULP tolerance rather
/// than bitwise. Finite inputs only.
// om-lint: simd — exp-normalize kernel; tolerance registered in
// tests/parity.rs (ulp_tolerance("log_softmax_rows")).
pub fn log_softmax_rows(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    assert_eq!(x.len(), rows * cols, "log_softmax_rows: shape mismatch");
    fill_rows(rows, cols, 8, |r, out| {
        let src = &x[r * cols..(r + 1) * cols];
        if crate::simd::log_softmax_row(src, out) {
            return;
        }
        log_softmax_row_scalar(src, out);
    })
}

/// Serial twin of [`log_softmax_rows`] — scalar rows, never parallel.
pub fn log_softmax_rows_serial(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    assert_eq!(x.len(), rows * cols, "log_softmax_rows_serial: shape mismatch");
    fill_rows_serial(rows, cols, |r, out| {
        log_softmax_row_scalar(&x[r * cols..(r + 1) * cols], out);
    })
}

/// Dequantise int8 rows with per-row scales: `out[r·dim + j] =
/// q[r·dim + j] as f32 · scales[r]`. The serving-arena read path. The
/// int→float conversion is exact for |q| ≤ 127 and the multiply rounds
/// once, exactly like the scalar loop — bitwise under any dispatch mode.
// om-lint: simd — dequantisation kernel; tolerance registered in
// tests/parity.rs (ulp_tolerance("dequant_rows") = 0, bitwise).
pub fn dequant_rows(q: &[i8], scales: &[f32], dim: usize) -> Vec<f32> {
    assert!(dim > 0, "dequant_rows: zero row width");
    assert_eq!(q.len(), scales.len() * dim, "dequant_rows: ragged rows");
    fill_rows(scales.len(), dim, 8, |r, out| {
        let qr = &q[r * dim..(r + 1) * dim];
        let s = scales[r];
        if crate::simd::dequant_row(qr, s, out) {
            return;
        }
        for (o, &qv) in out.iter_mut().zip(qr) {
            *o = qv as f32 * s;
        }
    })
}

/// Serial twin of [`dequant_rows`] — plain scalar loops, never parallel.
pub fn dequant_rows_serial(q: &[i8], scales: &[f32], dim: usize) -> Vec<f32> {
    assert!(dim > 0, "dequant_rows_serial: zero row width");
    assert_eq!(q.len(), scales.len() * dim, "dequant_rows_serial: ragged rows");
    fill_rows_serial(scales.len(), dim, |r, out| {
        let qr = &q[r * dim..(r + 1) * dim];
        let s = scales[r];
        for (o, &qv) in out.iter_mut().zip(qr) {
            *o = qv as f32 * s;
        }
    })
}

/// Parallel assembly of a serving score batch: the row-wise cross join
/// `out[b·n_items + i] = users[b] ⊕ items[i]` over a `[b, du]` user matrix
/// and a `[n, di]` item arena, producing `[b·n, du + di]` pair rows ready
/// for one rating-classifier GEMM. Pure copies — no arithmetic — so
/// neither the partitioning nor the vector copy path can affect bits.
// om-lint: simd — serving score-path copy kernel; tolerance registered in
// tests/parity.rs (ulp_tolerance("pair_rows") = 0, bitwise).
pub fn pair_rows(users: &[f32], items: &[f32], du: usize, di: usize) -> Vec<f32> {
    assert!(du > 0 && di > 0, "pair_rows: zero feature width");
    assert_eq!(users.len() % du, 0, "pair_rows: ragged user matrix");
    assert_eq!(items.len() % di, 0, "pair_rows: ragged item arena");
    let n = items.len() / di;
    let row = du + di;
    let mut out = vec![0.0f32; (users.len() / du) * n * row];
    if n == 0 {
        return out;
    }
    let grain = (FILL_GRAIN_CELLS / row).max(1);
    runtime::parallel_rows_mut(&mut out, row, grain, |r0, block| {
        if crate::simd::pair_fill(users, items, du, di, n, r0, block) {
            return;
        }
        for (dr, orow) in block.chunks_mut(row).enumerate() {
            let r = r0 + dr;
            let (bi, ii) = (r / n, r % n);
            orow[..du].copy_from_slice(&users[bi * du..(bi + 1) * du]);
            orow[du..].copy_from_slice(&items[ii * di..(ii + 1) * di]);
        }
    });
    out
}

/// Serial twin of [`pair_rows`] — one pair row at a time, never parallel.
pub fn pair_rows_serial(users: &[f32], items: &[f32], du: usize, di: usize) -> Vec<f32> {
    assert!(du > 0 && di > 0, "pair_rows: zero feature width");
    assert_eq!(users.len() % du, 0, "pair_rows: ragged user matrix");
    assert_eq!(items.len() % di, 0, "pair_rows: ragged item arena");
    let n = items.len() / di;
    let row = du + di;
    let mut out = vec![0.0f32; (users.len() / du) * n * row];
    for (r, orow) in out.chunks_mut(row).enumerate() {
        let (bi, ii) = (r / n, r % n);
        orow[..du].copy_from_slice(&users[bi * du..(bi + 1) * du]);
        orow[du..].copy_from_slice(&items[ii * di..(ii + 1) * di]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, runtime, seeded_rng};

    fn random_vec(n: usize, seed: u64) -> Vec<f32> {
        init::uniform(&[n], -1.0, 1.0, &mut seeded_rng(seed)).to_vec()
    }

    fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
        let prev = runtime::set_threads(n);
        let out = f();
        runtime::set_threads(prev);
        out
    }

    #[test]
    fn gemm_matches_serial_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (64, 64, 64), (130, 97, 61), (257, 33, 129)] {
            let a = random_vec(m * k, 1000 + m as u64);
            let b = random_vec(k * n, 2000 + n as u64);
            let mut c_ref = vec![0.0f32; m * n];
            gemm_serial(&a, &b, &mut c_ref, m, k, n);
            for threads in [1, runtime::max_threads()] {
                let c = with_threads(threads, || {
                    let mut c = vec![0.0f32; m * n];
                    gemm(&a, &b, &mut c, m, k, n);
                    c
                });
                assert_eq!(c, c_ref, "gemm {m}x{k}x{n} differs at {threads} threads");
            }
        }
    }

    #[test]
    fn gemm_skips_zero_rows_like_serial() {
        let (m, k, n) = (64, 48, 32);
        let mut a = random_vec(m * k, 7);
        // Zero whole stretches to exercise the skip path.
        for v in a.iter_mut().take(m * k / 2) {
            *v = 0.0;
        }
        let b = random_vec(k * n, 8);
        let mut c_ref = vec![0.0f32; m * n];
        gemm_serial(&a, &b, &mut c_ref, m, k, n);
        let mut c = vec![0.0f32; m * n];
        gemm(&a, &b, &mut c, m, k, n);
        assert_eq!(c, c_ref);
    }

    #[test]
    fn sum_is_thread_count_invariant() {
        for n in [1, 100, REDUCE_CHUNK, REDUCE_CHUNK + 1, 5 * REDUCE_CHUNK + 13] {
            let x = random_vec(n, n as u64);
            // The dispatched sum must be bit-identical across thread counts
            // in either mode; it equals the scalar serial twin bitwise only
            // when AVX2 dispatch is off (tests/parity.rs holds the ULP
            // bound for the vector path).
            let reference = with_threads(1, || sum(&x));
            for threads in [2, runtime::max_threads()] {
                let s = with_threads(threads, || sum(&x));
                assert_eq!(s.to_bits(), reference.to_bits(), "sum({n}) at {threads} threads");
            }
            if !crate::simd::active() {
                assert_eq!(reference.to_bits(), sum_serial(&x).to_bits(), "scalar sum({n}) vs serial");
            }
        }
    }

    #[test]
    fn map_and_zip_match_scalar_loops() {
        let n = 3 * MAP_GRAIN + 17;
        let a = random_vec(n, 21);
        let b = random_vec(n, 22);
        let mapped = map(&a, |x| x.exp());
        let zipped = zip_map(&a, &b, |x, y| x * y);
        for i in (0..n).step_by(997) {
            assert_eq!(mapped[i].to_bits(), a[i].exp().to_bits());
            assert_eq!(zipped[i].to_bits(), (a[i] * b[i]).to_bits());
        }
    }

    #[test]
    fn transpose_roundtrips() {
        let (m, n) = (173, 111);
        let x = random_vec(m * n, 31);
        let t = transpose(&x, m, n);
        let back = transpose(&t, n, m);
        assert_eq!(back, x);
    }

    #[test]
    fn fill_rows_indexes_correctly() {
        let out = fill_rows(211, 7, 2, |r, row| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (r * 7 + j) as f32;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }
}
