//! Special-purpose ops for domain adversarial training and contrastive
//! projection: gradient scaling/reversal and L2 row normalisation.

use super::{acc, wants_grad};
use crate::kernels;
use crate::Tensor;

impl Tensor {
    /// Gradient-scaled identity: forward is a copy, backward multiplies the
    /// upstream gradient by `c`.
    ///
    /// With `c = -λ` this is the Gradient Reversal Layer of Ganin &
    /// Lempitsky used by the Domain Adversarial Training Module (§4.4): the
    /// domain classifier downstream trains normally while the feature
    /// extractor upstream receives reversed gradients, realising the
    /// min–max objective of Eqs. 15/17.
    pub fn grad_scale(&self, c: f32) -> Tensor {
        Tensor::from_op(
            self.to_vec(),
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    let gp = kernels::map(g, |x| x * c);
                    acc(&parents[0], &gp);
                }
            }),
        )
    }

    /// Gradient reversal with strength `lambda` (convenience wrapper).
    pub fn gradient_reversal(&self, lambda: f32) -> Tensor {
        self.grad_scale(-lambda)
    }

    /// L2-normalise every row of a 2-D view: `y_i = x_i / max(‖x_i‖, ε)`.
    ///
    /// Projected user–item pair embeddings are normalised before the
    /// supervised contrastive loss so the dot products of Eq. 13 are cosine
    /// similarities bounded by 1/τ, which keeps the loss well-conditioned.
    // om-lint: reduction-ok(per-row serial norm sums in element order
    // inside fill_rows row callbacks — partitioning never splits a row)
    pub fn l2_normalize_rows(&self) -> Tensor {
        const EPS: f32 = 1e-8;
        let (m, n) = self.shape().as_2d();
        let x = self.to_vec();
        let norms = kernels::fill_rows(m, 1, 32, |i, slot| {
            let row = &x[i * n..(i + 1) * n];
            slot[0] = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(EPS);
        });
        let out = kernels::fill_rows(m, n, 8, |i, orow| {
            let row = &x[i * n..(i + 1) * n];
            for (o, &v) in orow.iter_mut().zip(row) {
                *o = v / norms[i];
            }
        });
        let saved_y = out.clone();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    // dx = (g - y (y·g)) / ‖x‖ per row
                    let gp = kernels::fill_rows(m, n, 8, |i, orow| {
                        let y = &saved_y[i * n..(i + 1) * n];
                        let gi = &g[i * n..(i + 1) * n];
                        let dot: f32 = y.iter().zip(gi).map(|(a, b)| a * b).sum();
                        for (j, o) in orow.iter_mut().enumerate() {
                            *o = (gi[j] - y[j] * dot) / norms[i];
                        }
                    });
                    acc(&parents[0], &gp);
                }
            }),
        )
    }
}

impl Tensor {
    /// Row-wise layer normalisation (no affine): each row of a 2-D view is
    /// standardised to zero mean and unit variance. Affine gain/bias, when
    /// wanted, compose via [`Tensor::mul_row`] and
    /// [`Tensor::add_row`].
    // om-lint: reduction-ok(per-row serial mean/variance sums in element
    // order inside fill_rows row callbacks — partitioning never splits a row)
    pub fn layer_norm_rows(&self) -> Tensor {
        const EPS: f32 = 1e-5;
        let (m, n) = self.shape().as_2d();
        let x = self.to_vec();
        // Pass 1: per-row (mean, 1/std) pairs; pass 2: standardised rows.
        let stats = kernels::fill_rows(m, 2, 32, |i, slot| {
            let row = &x[i * n..(i + 1) * n];
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
            slot[0] = mean;
            slot[1] = 1.0 / (var + EPS).sqrt();
        });
        let out = kernels::fill_rows(m, n, 8, |i, orow| {
            let row = &x[i * n..(i + 1) * n];
            let (mean, is) = (stats[2 * i], stats[2 * i + 1]);
            for (o, &v) in orow.iter_mut().zip(row) {
                *o = (v - mean) * is;
            }
        });
        let inv_std: Vec<f32> = (0..m).map(|i| stats[2 * i + 1]).collect();
        let saved_y = out.clone();
        Tensor::from_op(
            out,
            self.dims(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if wants_grad(&parents[0]) {
                    // dx = inv_std * (g - mean(g) - y * mean(g ∘ y)) per row
                    let gp = kernels::fill_rows(m, n, 8, |i, orow| {
                        let y = &saved_y[i * n..(i + 1) * n];
                        let gi = &g[i * n..(i + 1) * n];
                        let mg = gi.iter().sum::<f32>() / n as f32;
                        let mgy = gi.iter().zip(y).map(|(a, b)| a * b).sum::<f32>() / n as f32;
                        for (j, o) in orow.iter_mut().enumerate() {
                            *o = inv_std[i] * (gi[j] - mg - y[j] * mgy);
                        }
                    });
                    acc(&parents[0], &gp);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn grad_scale_forward_is_identity() {
        let x = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        assert_eq!(x.grad_scale(-0.5).to_vec(), vec![1.0, -2.0]);
    }

    #[test]
    fn gradient_reversal_flips_sign() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let y = x.gradient_reversal(1.0).sum_all();
        y.backward();
        assert_eq!(x.grad_vec().unwrap(), vec![-1.0, -1.0]);
    }

    #[test]
    fn gradient_reversal_scales_by_lambda() {
        let x = Tensor::from_vec(vec![1.0], &[1]).requires_grad();
        x.gradient_reversal(0.25).sum_all().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![-0.25]);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let x = Tensor::from_vec(vec![3.0, 4.0, 0.0, 5.0], &[2, 2]);
        let y = x.l2_normalize_rows();
        assert!(close(y.to_vec()[0], 0.6));
        assert!(close(y.to_vec()[1], 0.8));
        assert!(close(y.to_vec()[2], 0.0));
        assert!(close(y.to_vec()[3], 1.0));
    }

    #[test]
    fn l2_normalize_gradient_orthogonal_to_output() {
        // The gradient of any function of y wrt x must be orthogonal to y
        // (norm direction carries no signal).
        let x = Tensor::from_vec(vec![1.0, 2.0, 2.0], &[1, 3]).requires_grad();
        let y = x.l2_normalize_rows();
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 3]);
        y.mul(&w).sum_all().backward();
        let g = x.grad_vec().unwrap();
        let xv = vec![1.0, 2.0, 2.0];
        let dot: f32 = g.iter().zip(&xv).map(|(a, b)| a * b).sum();
        assert!(dot.abs() < 1e-5, "grad not orthogonal: {dot}");
    }

    #[test]
    fn l2_normalize_zero_row_is_safe() {
        let x = Tensor::zeros(&[1, 3]);
        let y = x.l2_normalize_rows();
        assert_eq!(y.to_vec(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn layer_norm_standardises_rows() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0], &[2, 3]);
        let y = x.layer_norm_rows().to_vec();
        for row in 0..2 {
            let r = &y[row * 3..(row + 1) * 3];
            let mean: f32 = r.iter().sum::<f32>() / 3.0;
            let var: f32 = r.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
        // scale invariance of the standardised output
        assert!(close(y[0], y[3]));
    }

    #[test]
    fn layer_norm_gradcheck() {
        use crate::{gradcheck, init, seeded_rng};
        let w = init::uniform(&[2, 5], -1.0, 1.0, &mut seeded_rng(33)).requires_grad();
        let m = init::uniform(&[2, 5], -1.0, 1.0, &mut seeded_rng(34));
        let r = gradcheck(&w, |w| w.layer_norm_rows().mul(&m).sum_all(), 1e-2);
        assert!(r.passes(3e-2), "{r:?}");
    }

    #[test]
    fn mul_row_broadcasts_gain() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let g = Tensor::from_vec(vec![10.0, 100.0], &[2]).requires_grad();
        let y = x.mul_row(&g);
        assert_eq!(y.to_vec(), vec![10.0, 200.0, 30.0, 400.0]);
        y.sum_all().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![10.0, 100.0, 10.0, 100.0]);
        assert_eq!(g.grad_vec().unwrap(), vec![4.0, 6.0]);
    }
}
