//! Loader robustness: malformed lines, unicode, huge ratings, interleaved
//! domains — the corpus-ingestion layer must fail loudly and precisely.

use om_data::loader::{load_amazon_json_lines, load_tsv, IdInterner, LoadError};
use om_data::types::UserId;

#[test]
fn json_with_unicode_and_escapes() {
    let line = r#"{"reviewerID": "Ünï", "asin": "B1", "overall": 4.0, "summary": "Crouching Tiger — Hidden Dragon \"wow\""}"#;
    let mut u = IdInterner::new();
    let mut i = IdInterner::new();
    let d = load_amazon_json_lines("Movies", line, &mut u, &mut i).unwrap();
    assert_eq!(d.len(), 1);
    assert!(d.interactions()[0].summary.contains("wow"));
}

#[test]
fn json_missing_fields_report_line_numbers() {
    let content = "\n{\"asin\": \"B1\", \"overall\": 5.0, \"summary\": \"x\"}\n";
    let mut u = IdInterner::new();
    let mut i = IdInterner::new();
    let err = load_amazon_json_lines("Books", content, &mut u, &mut i).unwrap_err();
    match err {
        LoadError::BadLine(n, why) => {
            assert_eq!(n, 2);
            assert!(why.contains("reviewerID"));
        }
        other => panic!("wrong error {other:?}"),
    }
}

#[test]
fn json_out_of_range_rating_rejected() {
    let line = r#"{"reviewerID": "A", "asin": "B", "overall": 11.0, "summary": "x"}"#;
    let mut u = IdInterner::new();
    let mut i = IdInterner::new();
    let err = load_amazon_json_lines("Books", line, &mut u, &mut i).unwrap_err();
    assert!(matches!(err, LoadError::BadRating(1, _)));
}

#[test]
fn blank_lines_are_skipped() {
    let content = "\n\n  \n";
    let mut u = IdInterner::new();
    let mut i = IdInterner::new();
    let d = load_amazon_json_lines("Books", content, &mut u, &mut i).unwrap();
    assert!(d.is_empty());
}

#[test]
fn interner_is_stable_and_dense() {
    let mut ids = IdInterner::new();
    assert!(ids.is_empty());
    let a = ids.intern("first");
    let b = ids.intern("second");
    let a2 = ids.intern("first");
    assert_eq!(a, a2);
    assert_eq!(a, 0);
    assert_eq!(b, 1);
    assert_eq!(ids.len(), 2);
}

#[test]
fn tsv_ratings_accept_float_strings() {
    let mut u = IdInterner::new();
    let mut i = IdInterner::new();
    let d = load_tsv("X", "u1\ti1\t4.0\tnice\n", &mut u, &mut i).unwrap();
    assert_eq!(d.interactions()[0].rating.stars(), 4);
}

#[test]
fn cross_format_overlap_via_shared_interner() {
    // A user can appear in a JSON-lines source and a TSV target — the
    // shared interner still identifies them.
    let mut users = IdInterner::new();
    let src = load_amazon_json_lines(
        "Books",
        r#"{"reviewerID": "X9", "asin": "B1", "overall": 5.0, "summary": "s"}"#,
        &mut users,
        &mut IdInterner::new(),
    )
    .unwrap();
    let tgt = load_tsv("Movies", "X9\tM1\t3\tmovie rev\n", &mut users, &mut IdInterner::new())
        .unwrap();
    assert_eq!(src.overlapping_users(&tgt), vec![UserId(0)]);
}
