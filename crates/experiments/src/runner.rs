//! Method registry and multi-trial execution.

use om_baselines::{Recommender, CMF, EMCDR, HeroGraph, LightGCN, NGCF, PTUPCDR};
use om_data::split::SplitConfig;
use om_data::SynthWorld;
use om_metrics::{aggregate, Aggregate, Eval};
use omnimatch_core::{OmniMatchConfig, Trainer};

/// Every method the tables compare. `Ours` carries the (possibly ablated)
/// OmniMatch configuration.
#[derive(Clone)]
pub enum Method {
    /// Single-domain NGCF.
    Ngcf,
    /// Single-domain LightGCN.
    LightGcn,
    /// Collective matrix factorisation.
    Cmf,
    /// Embedding-and-mapping.
    Emcdr,
    /// Personalised-bridge meta network.
    Ptupcdr,
    /// Shared cross-domain graph.
    HeroGraph,
    /// OmniMatch with the given configuration (`Ours` and all ablations).
    Ours(OmniMatchConfig),
}

impl Method {
    /// Column label used in the tables.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Ngcf => "NGCF",
            Method::LightGcn => "LIGHTGCN",
            Method::Cmf => "CMF",
            Method::Emcdr => "EMCDR",
            Method::Ptupcdr => "PTUPCDR",
            Method::HeroGraph => "HeroGraph",
            Method::Ours(_) => "Ours",
        }
    }

    /// The paper's Table 2/3 method order.
    pub fn paper_lineup() -> Vec<Method> {
        vec![
            Method::Ngcf,
            Method::LightGcn,
            Method::Cmf,
            Method::Emcdr,
            Method::Ptupcdr,
            Method::HeroGraph,
            Method::Ours(OmniMatchConfig::default()),
        ]
    }
}

/// Aggregated metrics of one method on one scenario.
#[derive(Debug, Clone, Copy)]
pub struct TrialResult {
    /// RMSE over trials.
    pub rmse: Aggregate,
    /// MAE over trials.
    pub mae: Aggregate,
    /// Mean training seconds per trial.
    pub train_seconds: f64,
}

/// Train + evaluate one method on one concrete scenario split.
pub fn run_once(
    world: &SynthWorld,
    source: &str,
    target: &str,
    method: &Method,
    split_seed: u64,
    model_seed: u64,
    train_fraction: f32,
) -> (Eval, f64) {
    let scenario = world.scenario(
        source,
        target,
        SplitConfig {
            seed: split_seed,
            train_fraction,
            ..SplitConfig::default()
        },
    );
    let pairs = scenario.test_pairs();
    let t0 = std::time::Instant::now();
    let eval = match method {
        Method::Ngcf => NGCF::fit(&scenario, model_seed).evaluate(&pairs),
        Method::LightGcn => LightGCN::fit(&scenario, model_seed).evaluate(&pairs),
        Method::Cmf => CMF::fit(&scenario, model_seed).evaluate(&pairs),
        Method::Emcdr => EMCDR::fit(&scenario, model_seed).evaluate(&pairs),
        Method::Ptupcdr => PTUPCDR::fit(&scenario, model_seed).evaluate(&pairs),
        Method::HeroGraph => HeroGraph::fit(&scenario, model_seed).evaluate(&pairs),
        Method::Ours(cfg) => {
            let trained = Trainer::new(cfg.clone().with_seed(model_seed)).fit(&scenario);
            trained.evaluate(&pairs)
        }
    };
    (eval, t0.elapsed().as_secs_f64())
}

/// Run `trials` seeded trials (split seed and model seed both vary) and
/// aggregate, mirroring the paper's 5-random-trials protocol (§5.4).
///
/// Trials are independent — each gets its own scenario split and model —
/// so they run on separate OS threads; results land in per-trial slots, so
/// the aggregate is identical to the sequential loop. The per-trial seeds
/// (`100 + t`, `1000 + 17t`) are unchanged from the serial implementation.
pub fn run_trials(
    world: &SynthWorld,
    source: &str,
    target: &str,
    method: &Method,
    trials: usize,
    train_fraction: f32,
) -> TrialResult {
    assert!(trials >= 1, "need at least one trial");
    let mut results: Vec<Option<(Eval, f64)>> = vec![None; trials];
    std::thread::scope(|scope| {
        for (t, slot) in results.iter_mut().enumerate() {
            // om-lint: allow(thread-spawn) — trials must NOT run on the
            // tensor pool: a trial calls `parallel_for` internally, and a
            // pool worker blocking in `latch.wait()` on a nested dispatch
            // (no work-stealing) would deadlock the pool. Scoped OS threads
            // keep trial- and kernel-parallelism on separate executors.
            scope.spawn(move || {
                *slot = Some(run_once(
                    world,
                    source,
                    target,
                    method,
                    100 + t as u64,
                    1000 + t as u64 * 17,
                    train_fraction,
                ));
            });
        }
    });
    let results: Vec<(Eval, f64)> = results
        .into_iter()
        .map(|r| r.expect("trial thread completed"))
        .collect();
    if om_obs::enabled() {
        // Emitted after the join, in trial order, so the event stream is
        // deterministic even though the trials themselves raced.
        for (t, (eval, secs)) in results.iter().enumerate() {
            om_obs::emit(
                "trial",
                &[
                    ("method", method.label().into()),
                    ("source", source.into()),
                    ("target", target.into()),
                    ("trial", (t as u64).into()),
                    ("rmse", eval.rmse.into()),
                    ("mae", eval.mae.into()),
                    ("seconds", (*secs).into()),
                ],
            );
        }
    }
    let rmses: Vec<f32> = results.iter().map(|(e, _)| e.rmse).collect();
    let maes: Vec<f32> = results.iter().map(|(e, _)| e.mae).collect();
    let secs: f64 = results.iter().map(|(_, s)| s).sum();
    TrialResult {
        rmse: aggregate(&rmses),
        mae: aggregate(&maes),
        train_seconds: secs / trials as f64,
    }
}

/// Parse `--trials N` (default 3) and `--fast` from CLI args.
pub fn cli_trials(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--trials" {
            return w[1].parse().expect("--trials takes an integer");
        }
    }
    if args.iter().any(|a| a == "--fast") {
        1
    } else {
        default
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::SynthConfig;

    #[test]
    fn baseline_trials_aggregate() {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        let r = run_trials(&world, "Books", "Movies", &Method::Emcdr, 2, 1.0);
        assert_eq!(r.rmse.n, 2);
        assert!(r.rmse.mean.is_finite());
        assert!(r.mae.mean > 0.0);
    }

    #[test]
    fn lineup_has_seven_methods() {
        assert_eq!(Method::paper_lineup().len(), 7);
        assert_eq!(Method::paper_lineup()[6].label(), "Ours");
    }

    #[test]
    fn fraction_is_forwarded() {
        let world = SynthWorld::generate(SynthConfig::tiny(), &["Books", "Movies"]);
        let full = run_trials(&world, "Books", "Movies", &Method::Cmf, 1, 1.0);
        let sub = run_trials(&world, "Books", "Movies", &Method::Cmf, 1, 0.5);
        // results differ because the training set differs
        assert_ne!(full.rmse.mean, sub.rmse.mean);
    }
}
